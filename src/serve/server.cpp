#include "serve/server.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "util/failpoint.hpp"
#include "util/json.hpp"

namespace nfacount {
namespace serve {

namespace {

/// Short lowercase op names for the metrics JSON, indexed by MsgType value.
const char* const kOpNames[kNumMsgTypes] = {
    "reply",  "ping",   "register", "count",    "count_state", "sample",
    "extend", "stats",  "evict",    "shutdown", "unregister",
};

/// Poller tags for the two non-connection descriptors; connection ids
/// start at 2 (ServeDaemon::next_conn_id_).
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;

/// Bytes pulled off a socket per recv call.
constexpr size_t kReadChunk = 64u << 10;
/// Cap on bytes read from one connection per readiness event, so one
/// firehose peer cannot starve the rest (level-triggered polling re-reports
/// the remainder immediately).
constexpr size_t kMaxReadPerEvent = 256u << 10;
/// inbuf prefix garbage tolerated before compacting the buffer.
constexpr size_t kCompactThreshold = 1u << 20;
/// Readiness events handled per reactor iteration.
constexpr size_t kMaxPollEvents = 64;
/// Idle-timeout scan cadence.
constexpr int64_t kIdleScanPeriodUs = 100 * 1000;

/// Steady-clock microseconds (reactor timestamps; never wall time).
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ServeDaemon::ServeDaemon(SessionRegistry* registry, ServerOptions options)
    : registry_(registry), options_(options) {}

ServeDaemon::~ServeDaemon() { Stop(); }

Status ServeDaemon::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("serve: daemon already started");
  }
  Result<SocketFd> listener = ListenLoopback(options_.port, &port_);
  if (!listener.ok()) {
    started_.store(false);
    return listener.status();
  }
  listener_ = std::move(listener).value();
  uptime_.Restart();
  if (options_.legacy_threads) {
    accept_thread_ = std::thread([this] { AcceptLoop(); });
    reaper_thread_ = std::thread([this] { ReaperLoop(); });
    return Status::Ok();
  }
  if (!poller_.valid() || !wake_.valid()) {
    started_.store(false);
    listener_.Close();
    return Status::Internal("serve: failed to create poller or wake pipe");
  }
  Status setup = SetNonBlocking(listener_, true);
  if (setup.ok()) setup = poller_.Add(listener_.fd(), Poller::kReadable,
                                      kListenerTag);
  if (setup.ok()) setup = poller_.Add(wake_.fd(), Poller::kReadable, kWakeTag);
  if (!setup.ok()) {
    started_.store(false);
    listener_.Close();
    return setup;
  }
  int workers = options_.workers;
  if (workers <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    workers = hw > 0 ? static_cast<int>(hw) : 1;
  }
  worker_count_ = workers;
  worker_threads_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  reactor_thread_ = std::thread([this] { ReactorLoop(); });
  return Status::Ok();
}

void ServeDaemon::RequestStop() {
  if (stop_requested_.exchange(true)) return;
  // shutdown(), not close(): on Linux, closing a listener does NOT wake a
  // thread blocked in accept(), but shutting it down does — and closing a
  // descriptor another thread is still reading risks the kernel handing the
  // same number to a new socket. Descriptors are closed in Stop() (or the
  // reactor epilogue), after the threads using them are done with them.
  listener_.ShutdownBoth();
  if (options_.legacy_threads) {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) conn->sock.ShutdownBoth();
  } else {
    // The reactor polls stop_requested_ every iteration; the wake pipe
    // bounds the reaction time by its poll timeout.
    wake_.Signal();
  }
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_cv_.notify_all();
  }
}

void ServeDaemon::Stop() {
  if (!started_.load()) return;
  if (options_.legacy_threads) {
    if (!stop_requested_.load() && options_.drain_timeout_ms > 0) {
      // Drain phase: stop accepting, cut idle connections loose, and give
      // every in-flight request up to the deadline to finish its reply.
      draining_.store(true);
      listener_.ShutdownBoth();  // wakes the accept thread (see RequestStop)
      if (accept_thread_.joinable()) accept_thread_.join();
      WallTimer drain_timer;
      bool all_done = false;
      for (;;) {
        all_done = true;
        {
          std::lock_guard<std::mutex> lock(conns_mu_);
          for (auto& conn : conns_) {
            if (conn->done.load()) continue;
            all_done = false;
            // A connection parked between requests has nothing in flight;
            // shutting its socket turns the pending read into a clean close.
            // One actively serving a request keeps its socket — the reply
            // write is exactly what the drain is waiting for.
            if (!conn->in_flight.load()) conn->sock.ShutdownBoth();
          }
        }
        const int64_t elapsed_ms =
            static_cast<int64_t>(drain_timer.ElapsedSeconds() * 1e3);
        if (all_done || elapsed_ms >= options_.drain_timeout_ms) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      drained_clean_.store(all_done);
      drain_duration_ms_.store(
          static_cast<int64_t>(drain_timer.ElapsedSeconds() * 1e3));
    }
    RequestStop();  // hard-stop any stragglers past the deadline
    if (accept_thread_.joinable()) accept_thread_.join();
    {
      std::lock_guard<std::mutex> lock(finished_mu_);
      reaper_stop_ = true;
    }
    finished_cv_.notify_all();
    if (reaper_thread_.joinable()) reaper_thread_.join();
    listener_.Close();
    std::vector<std::unique_ptr<Connection>> conns;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns.swap(conns_);
    }
    for (auto& conn : conns) {
      if (conn->thread.joinable()) conn->thread.join();
    }
  } else {
    if (!stop_requested_.load() && options_.drain_timeout_ms > 0) {
      // Drain phase: the reactor stops accepting, stops reading, serves the
      // requests it already decoded, flushes every write buffer, and hangs
      // connections up as they go idle; this thread just watches the clock.
      draining_.store(true);
      wake_.Signal();
      WallTimer drain_timer;
      for (;;) {
        if (drain_complete_.load() || stop_requested_.load()) break;
        const int64_t elapsed_ms =
            static_cast<int64_t>(drain_timer.ElapsedSeconds() * 1e3);
        if (elapsed_ms >= options_.drain_timeout_ms) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      drained_clean_.store(drain_complete_.load());
      drain_duration_ms_.store(
          static_cast<int64_t>(drain_timer.ElapsedSeconds() * 1e3));
    }
    RequestStop();  // hard-stop any stragglers past the deadline
    if (reactor_thread_.joinable()) reactor_thread_.join();
    listener_.Close();
    {
      std::lock_guard<std::mutex> lock(wq_mu_);
      workers_stop_ = true;
    }
    wq_cv_.notify_all();
    for (std::thread& worker : worker_threads_) {
      if (worker.joinable()) worker.join();
    }
    worker_threads_.clear();
  }
  // Every thread is quiet: demote all resident sessions so the shutdown
  // loses nothing (checkpoints carry counts, tables, and draw cursors).
  // Failures land in the registry's demote_failures counter; a daemon
  // going down cannot do more than try.
  (void)registry_->SaveAll();
}

void ServeDaemon::WaitUntilStopRequested() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_.load(); });
}

bool ServeDaemon::WaitUntilStopRequestedFor(int timeout_ms) {
  std::unique_lock<std::mutex> lock(stop_mu_);
  return stop_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [this] { return stop_requested_.load(); });
}

int64_t ServeDaemon::active_connections() const {
  if (!options_.legacy_threads) {
    return active_conns_.load(std::memory_order_relaxed);
  }
  int64_t active = 0;
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const auto& conn : conns_) {
    if (!conn->done.load()) active++;
  }
  return active;
}

// --- event-driven runtime ---------------------------------------------------

void ServeDaemon::ReactorLoop() {
  std::vector<Poller::Event> events;
  while (!stop_requested_.load()) {
    Result<size_t> waited = poller_.Wait(&events, kMaxPollEvents, 50);
    if (!waited.ok()) break;  // poller broken; fall through to RequestStop
    if (stop_requested_.load()) break;
    // Drain the wake pipe BEFORE swapping the flush list. A worker does
    // "push flush entry, then Signal()": a Signal landing after this drain
    // but before the swap leaves its entry in the swapped list; one landing
    // after the swap leaves the pipe readable so the next Wait returns
    // immediately. Draining after the swap instead would strand such an
    // entry for a full poll timeout.
    wake_.Drain();
    // Serve worker flush requests first so finished replies head out before
    // new requests come in.
    {
      std::vector<std::shared_ptr<RConn>> flushes;
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        flushes.swap(flush_list_);
      }
      for (const std::shared_ptr<RConn>& conn : flushes) FlushConn(conn);
    }
    for (const Poller::Event& ev : events) {
      if (ev.tag == kWakeTag) continue;  // drained above
      if (ev.tag == kListenerTag) {
        if (!draining_.load()) AcceptReady();
        continue;
      }
      auto it = rconns_.find(ev.tag);
      if (it == rconns_.end()) continue;  // destroyed earlier this batch
      std::shared_ptr<RConn> conn = it->second;
      if (ev.events & Poller::kWritable) FlushConn(conn);
      if (conn->dead) continue;
      if (ev.events & Poller::kReadable) ReadReady(conn);
    }
    ScanIdle(NowMicros());
    if (draining_.load()) DrainTick();
  }
  RequestStop();  // covers the poller-failure exit
  // Epilogue: this thread owns every socket, and it is leaving — close them
  // all. Workers still finishing requests only touch mu-guarded queues on
  // the (heap-held) RConn, never the socket.
  for (auto& entry : rconns_) {
    entry.second->dead = true;
    (void)poller_.Remove(entry.second->sock.fd());
    entry.second->sock.Close();
  }
  rconns_.clear();
  active_conns_.store(0, std::memory_order_relaxed);
}

void ServeDaemon::AcceptReady() {
  for (;;) {
    if (options_.max_connections > 0 &&
        rconns_.size() >= static_cast<size_t>(options_.max_connections)) {
      // Accept-side backpressure: park the listener; excess connects wait
      // in the kernel backlog until a slot frees (MaybeResumeAccept).
      if (!accept_parked_) {
        accept_parked_ = true;
        accept_backpressure_.fetch_add(1, std::memory_order_relaxed);
        (void)poller_.Modify(listener_.fd(), 0, kListenerTag);
      }
      return;
    }
    SocketFd sock;
    if (!TryAccept(listener_, &sock).ok()) return;  // listener closed
    if (!sock.valid()) return;                      // nothing pending
    if (!SetNonBlocking(sock, true).ok()) continue;  // drop broken socket
    auto conn = std::make_shared<RConn>();
    conn->sock = std::move(sock);
    conn->id = next_conn_id_++;
    conn->last_read_us = NowMicros();
    if (!poller_.Add(conn->sock.fd(), Poller::kReadable, conn->id).ok()) {
      continue;  // conn destructor closes the socket
    }
    rconns_.emplace(conn->id, conn);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ServeDaemon::MaybeResumeAccept() {
  if (!accept_parked_ || draining_.load() || stop_requested_.load()) return;
  if (options_.max_connections > 0 &&
      rconns_.size() >= static_cast<size_t>(options_.max_connections)) {
    return;
  }
  accept_parked_ = false;
  (void)poller_.Modify(listener_.fd(), Poller::kReadable, kListenerTag);
}

void ServeDaemon::ReadReady(const std::shared_ptr<RConn>& conn) {
  if (conn->dead || conn->read_closed || conn->read_eof || conn->read_paused) {
    return;
  }
  size_t total = 0;
  bool eof = false;
  bool broken = false;
  while (total < kMaxReadPerEvent) {
    const size_t old_size = conn->inbuf.size();
    conn->inbuf.resize(old_size + kReadChunk);
    size_t n = 0;
    const Status read = ReadSome(conn->sock, &conn->inbuf[old_size],
                                 kReadChunk, &n);
    conn->inbuf.resize(old_size + n);
    if (!read.ok()) {
      if (read.code() == StatusCode::kNotFound) {
        eof = true;  // clean close / half-close
      } else {
        broken = true;  // reset or worse: nobody left to reply to
      }
      break;
    }
    if (n == 0) break;  // EAGAIN: drained the socket
    total += n;
    if (n < kReadChunk) break;  // short read: drained the socket
  }
  if (broken) {
    DestroyConn(conn);
    return;
  }
  if (total > 0) {
    bytes_in_.fetch_add(static_cast<int64_t>(total),
                        std::memory_order_relaxed);
    conn->last_read_us = NowMicros();
  }
  if (eof) {
    conn->read_eof = true;
    UpdateInterest(conn);
  }
  if (total > 0 || eof) ParseFrames(conn);
}

void ServeDaemon::ParseFrames(const std::shared_ptr<RConn>& conn) {
  if (conn->dead) return;
  const int cap = options_.max_inflight_per_conn;
  std::vector<PendingReq> parsed;
  Status violation = Status::Ok();
  bool stopped_for_cap = false;
  const int64_t now = NowMicros();
  if (!conn->read_closed) {
    int inflight_snapshot = 0;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      inflight_snapshot = conn->inflight;
    }
    for (;;) {
      if (cap > 0 &&
          inflight_snapshot + static_cast<int>(parsed.size()) >= cap) {
        // In-flight cap: leave the rest buffered (and stop reading, below);
        // FlushConn re-enters here as replies drain.
        stopped_for_cap = true;
        break;
      }
      const size_t avail = conn->inbuf.size() - conn->in_off;
      if (avail < kFrameHeaderBytes) break;
      MsgType type = MsgType::kReply;
      uint32_t payload_len = 0;
      const Status header = DecodeFrameHeader(
          conn->inbuf.data() + conn->in_off, avail, &type, &payload_len);
      if (!header.ok()) {
        violation = header;
        break;
      }
      if (avail < kFrameHeaderBytes + payload_len) break;  // incomplete
      if (type == MsgType::kReply) {
        violation =
            Status::Invalid("serve: kReply is not a valid request type");
        break;
      }
      PendingReq req;
      req.frame.type = type;
      req.frame.payload.assign(conn->inbuf, conn->in_off + kFrameHeaderBytes,
                               payload_len);
      req.enqueue_us = now;
      parsed.push_back(std::move(req));
      conn->in_off += kFrameHeaderBytes + payload_len;
    }
  }
  if (conn->in_off == conn->inbuf.size()) {
    conn->inbuf.clear();
    conn->in_off = 0;
  } else if (conn->in_off > kCompactThreshold) {
    conn->inbuf.erase(0, conn->in_off);
    conn->in_off = 0;
  }
  bool schedule = false;
  bool pause = stopped_for_cap;
  if (!parsed.empty()) {
    std::lock_guard<std::mutex> lock(conn->mu);
    for (PendingReq& req : parsed) {
      conn->pending.push_back(std::move(req));
      conn->inflight++;
      queue_depth_.fetch_add(1, std::memory_order_relaxed);
    }
    if (!conn->scheduled) {
      conn->scheduled = true;
      schedule = true;
    }
    if (cap > 0 && conn->inflight >= cap) pause = true;
  }
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(wq_mu_);
      wq_.push_back(conn);
    }
    wq_cv_.notify_one();
  }
  if (!violation.ok()) {
    // The error reply queues behind the pipelined requests before it, so
    // the peer still gets every answer it was owed, in order.
    QueueTeardown(conn, std::move(violation));
    return;
  }
  if (pause && !conn->read_paused) {
    conn->read_paused = true;
    UpdateInterest(conn);
  }
  if (conn->read_eof && !conn->read_closed && !stopped_for_cap) {
    // Every byte the peer ever sent is now parsed. A leftover tail is a
    // mid-frame disconnect; otherwise serve what arrived and hang up once
    // the replies flush (half-close pipelining works).
    const size_t leftover = conn->inbuf.size() - conn->in_off;
    if (leftover > 0) {
      QueueTeardown(conn,
                    Status::DataLoss("frame: connection closed mid-frame"));
      return;
    }
    conn->read_closed = true;
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      idle = conn->pending.empty() && conn->inflight == 0 &&
             conn->outbox.empty();
    }
    if (idle && conn->wbuf.empty()) {
      DestroyConn(conn);  // satellite fix: EOF reclaims the slot NOW
      return;
    }
    UpdateInterest(conn);
  }
}

void ServeDaemon::QueueTeardown(const std::shared_ptr<RConn>& conn,
                                Status error) {
  conn->read_closed = true;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    PendingReq teardown;
    teardown.teardown = true;
    teardown.error = std::move(error);
    teardown.enqueue_us = NowMicros();
    conn->pending.push_back(std::move(teardown));
    conn->inflight++;
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
    if (!conn->scheduled) {
      conn->scheduled = true;
      schedule = true;
    }
  }
  UpdateInterest(conn);
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(wq_mu_);
      wq_.push_back(conn);
    }
    wq_cv_.notify_one();
  }
}

void ServeDaemon::FlushConn(const std::shared_ptr<RConn>& conn) {
  if (conn->dead) return;
  for (;;) {
    if (conn->wbuf.empty()) {
      bool close_flag = false;
      bool stop_flag = false;
      bool have_frame = false;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (!conn->outbox.empty()) {
          conn->wbuf = std::move(conn->outbox.front());
          conn->outbox.pop_front();
          conn->wbuf_off = 0;
          have_frame = true;
        } else {
          // Close only once every decoded request has been answered AND
          // flushed: an empty outbox alone means nothing while workers are
          // still producing replies for this connection (half-close with
          // pipelined requests).
          close_flag = conn->close_after_flush && conn->pending.empty() &&
                       conn->inflight == 0;
          stop_flag = conn->stop_after_flush;
        }
      }
      if (!have_frame) {
        if (conn->want_write) {
          conn->want_write = false;
          UpdateInterest(conn);
        }
        if (stop_flag) RequestStop();
        if (close_flag) DestroyConn(conn);
        return;
      }
    }
    size_t n = 0;
    const Status wrote =
        WriteSome(conn->sock, conn->wbuf.data() + conn->wbuf_off,
                  conn->wbuf.size() - conn->wbuf_off, &n);
    if (!wrote.ok()) {
      DestroyConn(conn);  // peer gone; best-effort is over
      return;
    }
    if (n == 0) {
      // Kernel send buffer full: let the poller call back when writable.
      if (!conn->want_write) {
        conn->want_write = true;
        UpdateInterest(conn);
      }
      return;
    }
    bytes_out_.fetch_add(static_cast<int64_t>(n), std::memory_order_relaxed);
    conn->wbuf_off += n;
    if (conn->wbuf_off < conn->wbuf.size()) continue;
    conn->wbuf.clear();
    conn->wbuf_off = 0;
    // One reply fully flushed: release its in-flight slot and resume
    // reading if the cap had paused this connection.
    bool resume = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->inflight--;
      resume = conn->read_paused && !conn->read_closed &&
               (options_.max_inflight_per_conn <= 0 ||
                conn->inflight < options_.max_inflight_per_conn);
    }
    if (resume) {
      conn->read_paused = false;
      UpdateInterest(conn);
      // Frames already buffered while paused parse without a new read.
      ParseFrames(conn);
      if (conn->dead) return;
    }
  }
}

void ServeDaemon::UpdateInterest(const std::shared_ptr<RConn>& conn) {
  if (conn->dead) return;
  uint32_t events = 0;
  if (!conn->read_paused && !conn->read_closed && !conn->read_eof) {
    events |= Poller::kReadable;
  }
  if (conn->want_write) events |= Poller::kWritable;
  (void)poller_.Modify(conn->sock.fd(), events, conn->id);
}

void ServeDaemon::DestroyConn(const std::shared_ptr<RConn>& conn) {
  if (conn->dead) return;
  conn->dead = true;
  {
    // Requests decoded but never served die with the connection; keep the
    // queue-depth gauge honest. A worker mid-request is unaffected — it
    // only touches mu-guarded queues and will find them empty.
    std::lock_guard<std::mutex> lock(conn->mu);
    queue_depth_.fetch_sub(static_cast<int64_t>(conn->pending.size()),
                           std::memory_order_relaxed);
    conn->pending.clear();
  }
  (void)poller_.Remove(conn->sock.fd());
  conn->sock.Close();
  rconns_.erase(conn->id);
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  MaybeResumeAccept();
}

void ServeDaemon::ScanIdle(int64_t now_us) {
  if (options_.read_timeout_ms <= 0) return;
  if (now_us - last_idle_scan_us_ < kIdleScanPeriodUs) return;
  last_idle_scan_us_ = now_us;
  const int64_t budget_us =
      static_cast<int64_t>(options_.read_timeout_ms) * 1000;
  std::vector<std::shared_ptr<RConn>> conns;
  conns.reserve(rconns_.size());
  for (const auto& entry : rconns_) conns.push_back(entry.second);
  for (const std::shared_ptr<RConn>& conn : conns) {
    if (conn->dead || conn->read_closed || conn->read_eof ||
        conn->timeout_fired) {
      continue;
    }
    bool waiting_on_peer = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      waiting_on_peer = conn->pending.empty() && conn->inflight == 0;
    }
    if (!waiting_on_peer) continue;  // we owe replies; the peer is fine
    if (now_us - conn->last_read_us < budget_us) continue;
    // Slow loris / silent peer: same classification as the blocking
    // runtime's SO_RCVTIMEO path.
    conn->timeout_fired = true;
    QueueTeardown(conn, Status::DeadlineExceeded("net: read timed out"));
  }
}

void ServeDaemon::DrainTick() {
  std::vector<std::shared_ptr<RConn>> conns;
  conns.reserve(rconns_.size());
  for (const auto& entry : rconns_) conns.push_back(entry.second);
  for (const std::shared_ptr<RConn>& conn : conns) {
    if (conn->dead) continue;
    conn->read_closed = true;  // no new requests; serve what was decoded
    bool idle = false;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      idle = conn->pending.empty() && conn->inflight == 0 &&
             conn->outbox.empty();
    }
    if (idle && conn->wbuf.empty()) {
      DestroyConn(conn);
    } else {
      UpdateInterest(conn);
    }
  }
  if (rconns_.empty()) drain_complete_.store(true);
}

void ServeDaemon::WorkerLoop() {
  for (;;) {
    std::shared_ptr<RConn> conn;
    {
      std::unique_lock<std::mutex> lock(wq_mu_);
      wq_cv_.wait(lock, [this] { return workers_stop_ || !wq_.empty(); });
      if (wq_.empty()) return;  // workers_stop_ and nothing left
      conn = std::move(wq_.front());
      wq_.pop_front();
    }
    // Serve this connection's queue to empty. Only one worker holds a given
    // connection at a time (the scheduled flag), so requests are answered
    // strictly in arrival order — the pipelining contract.
    for (;;) {
      PendingReq req;
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->pending.empty()) {
          conn->scheduled = false;
          break;
        }
        req = std::move(conn->pending.front());
        conn->pending.pop_front();
      }
      queue_depth_.fetch_sub(1, std::memory_order_relaxed);
      const int64_t start_us = NowMicros();
      std::string encoded;
      bool stop_after = false;
      bool close_after = false;
      bool drop_reply = false;
      if (req.teardown) {
        // Best-effort error reply for a framing violation or timeout, then
        // the connection closes once it flushes.
        ByteWriter w;
        WriteReplyStatus(req.error, &w);
        Result<std::string> frame = EncodeFrame(MsgType::kReply, w.buffer());
        if (frame.ok()) {
          encoded = std::move(frame).value();
        } else {
          drop_reply = true;  // cannot happen for a status block; belt and
        }                     // braces against an empty outbox entry
        close_after = true;
      } else {
        std::string reply = Dispatch(req.frame, &stop_after);
        reply = FinishReply(static_cast<int>(req.frame.type),
                            std::move(reply), NowMicros() - start_us,
                            start_us - req.enqueue_us);
        Result<std::string> frame = EncodeFrame(MsgType::kReply, reply);
        // The `net.write` failpoint fires here — the reply-emission seam —
        // so chaos schedules exercise the same injected write failures as
        // the blocking runtime's WriteFrame did.
        const failpoint::Eval fault = failpoint::Check("net.write");
        if (!frame.ok() || fault.action == failpoint::Action::kError) {
          drop_reply = true;
          close_after = true;
        } else {
          encoded = std::move(frame).value();
          if (fault.action == failpoint::Action::kShortWrite &&
              static_cast<size_t>(fault.arg) < encoded.size()) {
            // Injected mid-frame death: flush the truncated prefix so the
            // peer exercises its DataLoss path, then hang up.
            encoded.resize(static_cast<size_t>(fault.arg));
            close_after = true;
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (drop_reply) {
          conn->inflight--;  // this slot will never reach the flush path
        } else {
          conn->outbox.push_back(std::move(encoded));
        }
        if (close_after) conn->close_after_flush = true;
        if (stop_after) conn->stop_after_flush = true;
      }
      {
        std::lock_guard<std::mutex> lock(flush_mu_);
        flush_list_.push_back(conn);
      }
      wake_.Signal();
      if (close_after) {
        // The connection is closing; drop whatever else was pipelined
        // behind the fatal entry (by construction there is nothing, but a
        // race with a late parse costs nothing to cover).
        std::lock_guard<std::mutex> lock(conn->mu);
        queue_depth_.fetch_sub(static_cast<int64_t>(conn->pending.size()),
                               std::memory_order_relaxed);
        conn->pending.clear();
        conn->scheduled = false;
        break;
      }
    }
  }
}

// --- legacy thread-per-connection runtime -----------------------------------

void ServeDaemon::AcceptLoop() {
  while (!stop_requested_.load() && !draining_.load()) {
    Result<SocketFd> accepted = AcceptConnection(listener_);
    if (!accepted.ok()) {
      if (stop_requested_.load() || draining_.load()) return;
      // Transient accept failure: keep listening.
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(accepted).value();
    if (options_.read_timeout_ms > 0) {
      // Best effort: a connection we cannot arm the timeout on still works,
      // it is just not slow-loris-protected.
      (void)SetReadTimeout(conn->sock, options_.read_timeout_ms);
    }
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (stop_requested_.load() || draining_.load()) return;
      if (options_.max_connections > 0 &&
          conns_.size() >= static_cast<size_t>(options_.max_connections)) {
        // Overload: shed with an explicit Unavailable so the client can
        // back off (no request was read, so retrying is always safe).
        // Dropping `conn` closes the socket after the reply flushes.
        ByteWriter w;
        WriteReplyStatus(
            Status::Unavailable(
                "serve: connection limit reached; retry with backoff"),
            &w);
        (void)WriteFrame(conn->sock, MsgType::kReply, w.buffer());
        connections_shed_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      Connection* raw = conn.get();
      conns_.push_back(std::move(conn));
      raw->thread = std::thread([this, raw] { ServeConnection(raw); });
    }
  }
}

void ServeDaemon::ReaperLoop() {
  for (;;) {
    Connection* finished = nullptr;
    {
      std::unique_lock<std::mutex> lock(finished_mu_);
      finished_cv_.wait(
          lock, [this] { return reaper_stop_ || !finished_.empty(); });
      if (finished_.empty()) return;  // reaper_stop_ and nothing queued
      finished = finished_.front();
      finished_.pop_front();
    }
    // Extract the connection under the table lock BEFORE joining so Stop()
    // (which swaps the whole table) can never join the same thread twice:
    // whoever holds the unique_ptr owns the join.
    std::unique_ptr<Connection> owned;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      for (size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i].get() == finished) {
          owned = std::move(conns_[i]);
          conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
    if (owned && owned->thread.joinable()) owned->thread.join();
  }
}

void ServeDaemon::ServeConnection(Connection* conn) {
  while (!stop_requested_.load()) {
    Result<Frame> frame = ReadFrame(conn->sock);
    if (!frame.ok()) {
      // NotFound = the peer closed cleanly between frames: just hang up.
      // Everything else (bad magic/version/oversize, mid-frame close,
      // timeout) gets a best-effort error reply before the teardown so a
      // well-meaning client can see why it was dropped.
      if (frame.status().code() != StatusCode::kNotFound) {
        ByteWriter w;
        WriteReplyStatus(frame.status(), &w);
        (void)WriteFrame(conn->sock, MsgType::kReply, w.buffer());
      }
      break;
    }
    if (frame.value().type == MsgType::kReply) {
      ByteWriter w;
      WriteReplyStatus(
          Status::Invalid("serve: kReply is not a valid request type"), &w);
      (void)WriteFrame(conn->sock, MsgType::kReply, w.buffer());
      break;
    }
    bytes_in_.fetch_add(
        static_cast<int64_t>(kFrameHeaderBytes + frame.value().payload.size()),
        std::memory_order_relaxed);
    bool stop_after_reply = false;
    const int op = static_cast<int>(frame.value().type);
    WallTimer timer;
    // From here to the reply write this request is the drain's business:
    // Stop() keeps the socket open until in_flight drops (or the deadline).
    conn->in_flight.store(true);
    std::string reply = Dispatch(frame.value(), &stop_after_reply);
    reply = FinishReply(op, std::move(reply),
                        static_cast<int64_t>(timer.ElapsedSeconds() * 1e6),
                        /*queue_wait_us=*/0);
    Status sent = WriteFrame(conn->sock, MsgType::kReply, reply);
    conn->in_flight.store(false);
    if (!sent.ok()) break;
    bytes_out_.fetch_add(
        static_cast<int64_t>(kFrameHeaderBytes + reply.size()),
        std::memory_order_relaxed);
    if (stop_after_reply) {
      RequestStop();
      break;
    }
    if (draining_.load()) break;  // reply delivered; the daemon is leaving
  }
  // Shutdown only — the descriptor is closed by the Connection destructor
  // after this thread is joined (reaper or Stop()), so no other thread can
  // race a close against RequestStop()'s ShutdownBoth().
  conn->sock.ShutdownBoth();
  conn->done.store(true);
  // Hand ourselves to the reaper so the slot is reclaimed now, not when the
  // next client happens to connect.
  {
    std::lock_guard<std::mutex> lock(finished_mu_);
    finished_.push_back(conn);
  }
  finished_cv_.notify_one();
}

// --- shared dispatch --------------------------------------------------------

std::string ServeDaemon::FinishReply(int op, std::string reply,
                                     int64_t service_us,
                                     int64_t queue_wait_us) {
  if (reply.size() > kMaxPayloadBytes) {
    // The frame encoder would refuse an oversize payload and the client
    // would see only a dropped connection; send a status-only explanation
    // instead. (kSample pre-screens its counts, so this is a backstop.)
    ByteWriter oversize;
    WriteReplyStatus(Status::ResourceExhausted(
                         "serve: reply exceeds the frame payload limit"),
                     &oversize);
    reply = std::move(oversize.buffer());
  }
  // The reply payload starts with the status block; byte 0 is the status
  // code's low byte, 0 iff OK (kMaxStatusCode < 256).
  const bool ok = !reply.empty() && reply[0] == '\0';
  op_metrics_[static_cast<size_t>(op)].Record(ok, service_us, queue_wait_us);
  return reply;
}

std::string ServeDaemon::Dispatch(const Frame& frame, bool* stop_after_reply) {
  ByteWriter w;
  switch (frame.type) {
    case MsgType::kPing: {
      WriteReplyStatus(Status::Ok(), &w);
      break;
    }
    case MsgType::kRegister: {
      Result<RegisterRequest> req = DecodeRegister(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      WriteReplyStatus(
          registry_->Register(req.value().name, req.value().nfa_text,
                              req.value().horizon, req.value().seed,
                              req.value().eps, req.value().delta),
          &w);
      break;
    }
    case MsgType::kCount: {
      Result<CountRequest> req = DecodeCount(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<double> count =
          registry_->CountAtLength(req.value().name, req.value().length);
      WriteReplyStatus(count.status(), &w);
      if (count.ok()) w.F64(count.value());
      break;
    }
    case MsgType::kCountState: {
      Result<CountStateRequest> req = DecodeCountState(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<double> count = registry_->CountFor(
          req.value().name, req.value().state, req.value().length);
      WriteReplyStatus(count.status(), &w);
      if (count.ok()) w.F64(count.value());
      break;
    }
    case MsgType::kSample: {
      Result<SampleRequest> req = DecodeSample(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      // Reject up front any count whose reply could not fit one frame: each
      // word costs 4 + length bytes (u32 size + one byte per symbol) after
      // the fixed status/cursor/count prefix. Without this gate the daemon
      // would do the full sampling work only to drop the oversize reply —
      // or, for absurd counts, die allocating the result vector.
      const int64_t length = req.value().length;
      const int64_t per_word_bytes = 4 + (length > 0 ? length : 0);
      const int64_t reply_budget =
          static_cast<int64_t>(kMaxPayloadBytes) - 64;
      if (req.value().count > reply_budget / per_word_bytes) {
        WriteReplyStatus(
            Status::ResourceExhausted(
                "serve: sample reply would exceed the frame payload limit; "
                "request fewer words per call"),
            &w);
        break;
      }
      int64_t cursor_start = 0;
      Result<std::vector<Word>> words = registry_->SampleWords(
          req.value().name, req.value().length, req.value().count,
          &cursor_start);
      WriteReplyStatus(words.status(), &w);
      if (words.ok()) {
        w.I64(cursor_start);
        w.U64(words.value().size());
        for (const Word& word : words.value()) WriteWord(word, &w);
      }
      break;
    }
    case MsgType::kExtend: {
      Result<ExtendRequest> req = DecodeExtend(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<int> level =
          registry_->ExtendTo(req.value().name, req.value().level);
      WriteReplyStatus(level.status(), &w);
      if (level.ok()) w.I32(level.value());
      break;
    }
    case MsgType::kStats: {
      WriteReplyStatus(Status::Ok(), &w);
      w.String(StatsJson());
      break;
    }
    case MsgType::kEvict: {
      Result<EvictRequest> req = DecodeEvict(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      Result<bool> was_resident = registry_->Evict(req.value().name);
      WriteReplyStatus(was_resident.status(), &w);
      if (was_resident.ok()) w.U8(was_resident.value() ? 1 : 0);
      break;
    }
    case MsgType::kUnregister: {
      Result<UnregisterRequest> req = DecodeUnregister(frame.payload);
      if (!req.ok()) {
        WriteReplyStatus(req.status(), &w);
        break;
      }
      WriteReplyStatus(registry_->Unregister(req.value().name), &w);
      break;
    }
    case MsgType::kShutdown: {
      WriteReplyStatus(Status::Ok(), &w);
      *stop_after_reply = true;
      break;
    }
    case MsgType::kReply:
    default: {
      WriteReplyStatus(Status::Invalid("serve: unhandled message type"), &w);
      break;
    }
  }
  return std::move(w.buffer());
}

std::string ServeDaemon::StatsJson() const {
  JsonObject out;
  const double uptime = uptime_.ElapsedSeconds();
  int64_t total = 0;
  for (const OpMetrics& op : op_metrics_) {
    total += op.requests.load(std::memory_order_relaxed);
  }
  out.Set("runtime", options_.legacy_threads ? "threads" : "reactor");
  out.Set("workers", worker_count_);
  out.Set("uptime_s", uptime);
  out.Set("requests", total);
  out.Set("qps", uptime > 0.0 ? static_cast<double>(total) / uptime : 0.0);
  out.Set("active_connections", active_connections());
  out.Set("max_connections",
          static_cast<int64_t>(options_.max_connections));
  out.Set("connections_shed",
          connections_shed_.load(std::memory_order_relaxed));
  out.Set("accept_backpressure",
          accept_backpressure_.load(std::memory_order_relaxed));
  out.Set("queue_depth", queue_depth_.load(std::memory_order_relaxed));
  out.Set("bytes_in", bytes_in_.load(std::memory_order_relaxed));
  out.Set("bytes_out", bytes_out_.load(std::memory_order_relaxed));
  out.Set("draining", draining_.load());
  out.Set("drain_duration_ms",
          drain_duration_ms_.load(std::memory_order_relaxed));
  out.Set("drained_clean", drained_clean_.load());
  for (int i = 1; i < kNumMsgTypes; ++i) {
    const OpMetrics& op = op_metrics_[static_cast<size_t>(i)];
    if (op.requests.load(std::memory_order_relaxed) == 0) continue;
    JsonObject per_op;
    op.RenderInto(&per_op);
    out.SetRaw(std::string("op_") + kOpNames[i], per_op.Render());
  }
  JsonObject registry_stats;
  registry_->RenderStats(&registry_stats);
  out.SetRaw("registry", registry_stats.Render());
  return out.Render();
}

}  // namespace serve
}  // namespace nfacount
