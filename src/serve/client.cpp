#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace nfacount {
namespace serve {

namespace {

/// Rejects reply bodies with unconsumed bytes (protocol mismatch).
Status RejectTrailing(const ByteReader& r) {
  if (r.remaining() != 0) {
    return Status::DataLoss("reply body has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Result<ServeClient> ServeClient::Connect(uint16_t port) {
  Result<SocketFd> sock = ConnectLoopback(port);
  if (!sock.ok()) return sock.status();
  return ServeClient(std::move(sock).value());
}

Result<ServeClient> ServeClient::ConnectWithRetry(uint16_t port,
                                                  const RetryPolicy& policy) {
  const int attempts = std::max(1, policy.max_attempts);
  const int64_t base = std::max(1, policy.base_delay_ms);
  const int64_t cap = std::max<int64_t>(base, policy.max_delay_ms);
  Rng rng(policy.seed != 0 ? policy.seed : 0x7e7291e5u);
  int64_t prev_delay = base;
  Status last = Status::Ok();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Decorrelated jitter: uniform in [base, 3×previous], capped — grows
      // roughly exponentially, never synchronizes across clients.
      const int64_t hi = std::min(cap, prev_delay * 3);
      const int64_t delay = base + static_cast<int64_t>(rng.UniformU64(
                                       static_cast<uint64_t>(
                                           std::max<int64_t>(1, hi - base + 1))));
      prev_delay = delay;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    Result<ServeClient> connected = Connect(port);
    if (!connected.ok()) {
      last = connected.status();  // daemon down or restarting: retryable
      continue;
    }
    ServeClient client = std::move(connected).value();
    // Probe: a shed connection answers the ping with the daemon's queued
    // Unavailable greeting (or dies before it). Only a live, accepted
    // connection pings OK.
    Status probe = client.Ping();
    if (probe.ok()) return client;
    if (probe.code() == StatusCode::kUnavailable ||
        probe.code() == StatusCode::kNotFound ||
        probe.code() == StatusCode::kDataLoss) {
      last = probe;  // shed (or its connection-reset shadow): retryable
      continue;
    }
    return probe;  // a real error — retrying would just repeat it
  }
  return last.ok() ? Status::Unavailable("client: retry attempts exhausted")
                   : last;
}

Status ServeClient::SendRequest(MsgType type, const std::string& payload) {
  return WriteFrame(sock_, type, payload);
}

Result<std::string> ServeClient::ReadReplyBody() {
  Result<Frame> reply = ReadFrame(sock_);
  if (!reply.ok()) {
    // A clean close where a reply was due means the request died in flight.
    if (reply.status().code() == StatusCode::kNotFound) {
      return Status::DataLoss("client: connection closed before the reply");
    }
    return reply.status();
  }
  if (reply.value().type != MsgType::kReply) {
    return Status::DataLoss("client: expected a kReply frame");
  }
  ByteReader r(reply.value().payload.data(), reply.value().payload.size());
  Status remote = Status::Ok();
  NFA_RETURN_NOT_OK(ReadReplyStatus(&r, &remote));
  NFA_RETURN_NOT_OK(remote);
  std::string body(reply.value().payload.data() +
                       (reply.value().payload.size() - r.remaining()),
                   r.remaining());
  return body;
}

Status ServeClient::SendCount(const std::string& name, int length) {
  CountRequest req;
  req.name = name;
  req.length = length;
  return SendRequest(MsgType::kCount, EncodeCount(req));
}

Result<double> ServeClient::ReadCountReply() {
  Result<std::string> body = ReadReplyBody();
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  double estimate = 0.0;
  NFA_RETURN_NOT_OK(r.F64(&estimate));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return estimate;
}

Result<std::string> ServeClient::RoundTrip(MsgType type,
                                           const std::string& payload) {
  NFA_RETURN_NOT_OK(SendRequest(type, payload));
  return ReadReplyBody();
}

Status ServeClient::Ping() {
  return RoundTrip(MsgType::kPing, std::string()).status();
}

Status ServeClient::Register(const RegisterRequest& req) {
  return RoundTrip(MsgType::kRegister, EncodeRegister(req)).status();
}

Result<double> ServeClient::CountAtLength(const std::string& name,
                                          int length) {
  CountRequest req;
  req.name = name;
  req.length = length;
  Result<std::string> body = RoundTrip(MsgType::kCount, EncodeCount(req));
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  double estimate = 0.0;
  NFA_RETURN_NOT_OK(r.F64(&estimate));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return estimate;
}

Result<double> ServeClient::CountFor(const std::string& name, int32_t state,
                                     int length) {
  CountStateRequest req;
  req.name = name;
  req.state = state;
  req.length = length;
  Result<std::string> body =
      RoundTrip(MsgType::kCountState, EncodeCountState(req));
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  double estimate = 0.0;
  NFA_RETURN_NOT_OK(r.F64(&estimate));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return estimate;
}

Result<SampleResult> ServeClient::SampleWords(const std::string& name,
                                              int length, int64_t count) {
  SampleRequest req;
  req.name = name;
  req.length = length;
  req.count = count;
  Result<std::string> body = RoundTrip(MsgType::kSample, EncodeSample(req));
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  SampleResult result;
  NFA_RETURN_NOT_OK(r.I64(&result.cursor_start));
  uint64_t n = 0;
  NFA_RETURN_NOT_OK(r.U64(&n));
  if (n > kMaxPayloadBytes) {
    return Status::DataLoss("reply: word count corrupt");
  }
  result.words.resize(static_cast<size_t>(n));
  for (Word& word : result.words) {
    NFA_RETURN_NOT_OK(ReadWord(&r, &word));
  }
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return result;
}

Result<int> ServeClient::ExtendTo(const std::string& name, int level) {
  ExtendRequest req;
  req.name = name;
  req.level = level;
  Result<std::string> body = RoundTrip(MsgType::kExtend, EncodeExtend(req));
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  int32_t computed = 0;
  NFA_RETURN_NOT_OK(r.I32(&computed));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return static_cast<int>(computed);
}

Result<bool> ServeClient::Evict(const std::string& name) {
  EvictRequest req;
  req.name = name;
  Result<std::string> body = RoundTrip(MsgType::kEvict, EncodeEvict(req));
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  uint8_t flag = 0;
  NFA_RETURN_NOT_OK(r.U8(&flag));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return flag != 0;
}

Status ServeClient::Unregister(const std::string& name) {
  UnregisterRequest req;
  req.name = name;
  return RoundTrip(MsgType::kUnregister, EncodeUnregister(req)).status();
}

Result<std::string> ServeClient::Stats() {
  Result<std::string> body = RoundTrip(MsgType::kStats, std::string());
  if (!body.ok()) return body.status();
  ByteReader r(body.value().data(), body.value().size());
  std::string json;
  NFA_RETURN_NOT_OK(r.String(&json, kMaxPayloadBytes));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return json;
}

Status ServeClient::Shutdown() {
  return RoundTrip(MsgType::kShutdown, std::string()).status();
}

}  // namespace serve
}  // namespace nfacount
