// ServeDaemon — the socket front of serve mode: accepts loopback TCP
// connections, reads protocol.hpp frames, and dispatches them against a
// SessionRegistry. One thread per connection (queries run concurrently;
// the registry provides all synchronization), plus one accept thread.
//
// Fault posture: every protocol violation is classified by ReadFrame
// (InvalidArgument / DataLoss / DeadlineExceeded) and turns into a
// best-effort error reply followed by a clean connection teardown — a
// malformed or malicious peer can never crash or wedge the daemon, only
// lose its own connection (tests/test_serve_protocol.cpp).

#ifndef NFACOUNT_SERVE_SERVER_HPP_
#define NFACOUNT_SERVE_SERVER_HPP_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/metrics.hpp"
#include "util/net.hpp"
#include "util/timer.hpp"

namespace nfacount {
namespace serve {

/// Daemon configuration.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via ServeDaemon::port()).
  uint16_t port = 0;
  /// Per-connection receive timeout in ms; a peer that stalls mid-frame
  /// (slow loris) is cut off after this long. <= 0 disables the timeout.
  int read_timeout_ms = 10000;
  /// How long Stop() lets in-flight requests finish before hard-stopping
  /// the stragglers. <= 0 skips the drain phase entirely.
  int drain_timeout_ms = 5000;
  /// Connection cap; beyond it new connections are accepted, answered with
  /// a status-only Unavailable reply, and closed (load-shed, never wedged
  /// in the accept queue). 0 = unlimited.
  int max_connections = 0;
};

/// The serve-mode daemon. Owns the listener and the connection threads;
/// the registry is borrowed and must outlive the daemon.
class ServeDaemon {
 public:
  /// The daemon starts stopped; call Start().
  ServeDaemon(SessionRegistry* registry, ServerOptions options);
  /// Stops and joins everything still running.
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds the listener and starts the accept thread. FailedPrecondition
  /// when already started.
  Status Start();

  /// Signals the daemon to stop: closes the listener and shuts down every
  /// live connection. Safe from any thread, including connection threads
  /// (it never joins). Idempotent.
  void RequestStop();

  /// Graceful shutdown: stops accepting, lets in-flight requests finish up
  /// to ServerOptions::drain_timeout_ms (idle connections are cut loose
  /// immediately), hard-stops any stragglers, joins every thread, and
  /// finally demotes all resident sessions via the registry's SaveAll() so
  /// a clean shutdown loses nothing — draw cursors included. The drain
  /// phase is skipped when a stop was already requested (kShutdown request
  /// or RequestStop()). Must not be called from a connection thread.
  void Stop();

  /// Blocks until RequestStop() is called (by Stop, a kShutdown request, or
  /// the main thread reacting to a signal flag).
  void WaitUntilStopRequested();

  /// Waits up to `timeout_ms` for a stop request; returns whether one
  /// arrived. The polling primitive for an async-signal-safe main loop:
  /// the signal handler only sets a flag, and the main thread alternates
  /// between checking the flag and this bounded wait.
  bool WaitUntilStopRequestedFor(int timeout_ms);

  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Renders daemon metrics (uptime, qps, per-op latency histograms) and
  /// the registry's stats into one JSON document.
  std::string StatsJson() const;

 private:
  /// Accept loop body (accept thread).
  void AcceptLoop();
  /// A live (or finished) connection: its socket and thread. The struct's
  /// address is stable for the connection's lifetime (held by unique_ptr),
  /// so the connection thread works on a bare pointer.
  struct Connection {
    SocketFd sock;
    std::thread thread;
    std::atomic<bool> done{false};
    /// The connection thread is between "request decoded" and "reply
    /// written" — the work a graceful drain waits for.
    std::atomic<bool> in_flight{false};
  };

  /// Per-connection loop body: frames in, replies out, until the peer
  /// closes, errors, or the daemon stops.
  void ServeConnection(Connection* conn);
  /// Dispatches one decoded request frame; returns the reply payload.
  std::string Dispatch(const Frame& frame, bool* stop_after_reply);

  SessionRegistry* registry_;
  ServerOptions options_;
  SocketFd listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  /// Stop() is draining: no new connections, each live connection finishes
  /// its current request (and one reply) and hangs up.
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> connections_shed_{0};
  std::atomic<int64_t> drain_duration_ms_{-1};  ///< -1 until a drain ran
  std::atomic<bool> drained_clean_{false};
  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  mutable std::mutex conns_mu_;  ///< guards conns_
  std::vector<std::unique_ptr<Connection>> conns_;
  /// Per-message-type request metrics, indexed by MsgType value.
  mutable std::array<OpMetrics, kNumMsgTypes> op_metrics_;
  WallTimer uptime_;
};

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_SERVER_HPP_
