// ServeDaemon — the socket front of serve mode: accepts loopback TCP
// connections, reads protocol.hpp frames, and dispatches them against a
// SessionRegistry.
//
// Two runtimes share the dispatch/metrics/drain machinery:
//
//  * The default event-driven runtime: one nonblocking reactor thread owns
//    every socket (epoll on Linux, poll elsewhere — util/net.hpp Poller),
//    doing frame assembly and reply writeback through per-connection
//    buffers, and hands decoded requests to a bounded worker pool that runs
//    the SessionRegistry paths. A connection is scheduled onto at most one
//    worker at a time and its requests are served strictly in arrival
//    order, so clients may pipeline frames and replies come back in request
//    order — byte-identical to the serial runtime at any worker count.
//  * The PR 7 thread-per-connection runtime (ServerOptions::legacy_threads),
//    kept as the scaling baseline for bench_e18 and for the connect-time
//    shedding behavior some deployments may still want.
//
// Fault posture: every protocol violation is classified (InvalidArgument /
// DataLoss / DeadlineExceeded) and turns into a best-effort error reply
// followed by a clean connection teardown — a malformed or malicious peer
// can never crash or wedge the daemon, only lose its own connection
// (tests/test_serve_protocol.cpp, tests/test_serve_pipeline.cpp).

#ifndef NFACOUNT_SERVE_SERVER_HPP_
#define NFACOUNT_SERVE_SERVER_HPP_

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/protocol.hpp"
#include "serve/registry.hpp"
#include "util/metrics.hpp"
#include "util/net.hpp"
#include "util/timer.hpp"

namespace nfacount {
namespace serve {

/// Daemon configuration.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it back
  /// via ServeDaemon::port()).
  uint16_t port = 0;
  /// Per-connection receive timeout in ms; a peer that stalls mid-frame or
  /// sits idle between requests (slow loris) is cut off after this long.
  /// <= 0 disables the timeout.
  int read_timeout_ms = 10000;
  /// How long Stop() lets in-flight requests finish before hard-stopping
  /// the stragglers. <= 0 skips the drain phase entirely.
  int drain_timeout_ms = 5000;
  /// Connection cap. Reactor runtime: the listener is parked once the cap
  /// is reached and excess connects wait in the kernel backlog until a slot
  /// frees (accept-side backpressure, nobody is turned away). Legacy
  /// runtime: connections beyond the cap are accepted, answered with a
  /// status-only Unavailable reply, and closed (load-shed). 0 = unlimited.
  int max_connections = 0;
  /// Worker pool size for the event-driven runtime; 0 = one worker per
  /// hardware thread. Ignored by the legacy runtime.
  int workers = 0;
  /// Per-connection cap on decoded requests whose replies have not yet been
  /// fully flushed back to the peer. A pipelining client past the cap is
  /// simply not read from until replies drain (TCP backpressure), bounding
  /// the daemon's per-connection memory. <= 0 = unbounded. Ignored by the
  /// legacy runtime (which is serial per connection anyway).
  int max_inflight_per_conn = 32;
  /// Run the PR 7 thread-per-connection runtime instead of the reactor.
  bool legacy_threads = false;
};

/// The serve-mode daemon. Owns the listener, the reactor + worker pool (or
/// the legacy connection threads); the registry is borrowed and must
/// outlive the daemon.
class ServeDaemon {
 public:
  /// The daemon starts stopped; call Start().
  ServeDaemon(SessionRegistry* registry, ServerOptions options);
  /// Stops and joins everything still running.
  ~ServeDaemon();

  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Binds the listener and starts the serving threads. FailedPrecondition
  /// when already started.
  Status Start();

  /// Signals the daemon to stop: closes the listener and shuts down every
  /// live connection. Safe from any thread, including worker and connection
  /// threads (it never joins). Idempotent.
  void RequestStop();

  /// Graceful shutdown: stops accepting, lets in-flight requests finish up
  /// to ServerOptions::drain_timeout_ms (idle connections are cut loose
  /// immediately; pipelined requests already decoded are served), hard-stops
  /// any stragglers, joins every thread, and finally demotes all resident
  /// sessions via the registry's SaveAll() so a clean shutdown loses
  /// nothing — draw cursors included. The drain phase is skipped when a
  /// stop was already requested (kShutdown request or RequestStop()). Must
  /// not be called from a worker or connection thread.
  void Stop();

  /// Blocks until RequestStop() is called (by Stop, a kShutdown request, or
  /// the main thread reacting to a signal flag).
  void WaitUntilStopRequested();

  /// Waits up to `timeout_ms` for a stop request; returns whether one
  /// arrived. The polling primitive for an async-signal-safe main loop:
  /// the signal handler only sets a flag, and the main thread alternates
  /// between checking the flag and this bounded wait.
  bool WaitUntilStopRequestedFor(int timeout_ms);

  /// The bound TCP port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Renders daemon metrics (uptime, qps, queue depth, bytes in/out,
  /// per-op latency + queue-wait histograms) and the registry's stats into
  /// one JSON document.
  std::string StatsJson() const;

  /// @name Observability accessors (tests poll these instead of sleeping).
  /// @{
  /// Live connections right now.
  int64_t active_connections() const;
  /// Total request bytes read off sockets.
  int64_t bytes_in() const {
    return bytes_in_.load(std::memory_order_relaxed);
  }
  /// Total reply bytes written to sockets.
  int64_t bytes_out() const {
    return bytes_out_.load(std::memory_order_relaxed);
  }
  /// Decoded requests waiting for a worker right now (0 in legacy mode).
  int64_t queue_depth() const {
    return queue_depth_.load(std::memory_order_relaxed);
  }
  /// Times the listener was parked because max_connections was reached.
  int64_t accept_backpressure_events() const {
    return accept_backpressure_.load(std::memory_order_relaxed);
  }
  /// Worker pool size (0 in legacy mode).
  int worker_count() const { return worker_count_; }
  /// @}

 private:
  // --- shared dispatch -----------------------------------------------------

  /// Dispatches one decoded request frame; returns the reply payload.
  std::string Dispatch(const Frame& frame, bool* stop_after_reply);
  /// Applies the oversize-reply backstop and records op metrics; returns
  /// the final reply payload.
  std::string FinishReply(int op, std::string reply, int64_t service_us,
                          int64_t queue_wait_us);

  // --- event-driven runtime ------------------------------------------------

  /// One decoded request (or injected teardown) waiting for a worker.
  struct PendingReq {
    Frame frame;
    int64_t enqueue_us = 0;  ///< reactor clock at decode (queue-wait metric)
    /// Framing violation / timeout: the worker emits `error` as a
    /// best-effort reply and the connection closes after the flush.
    bool teardown = false;
    Status error;
  };

  /// A reactor-managed connection. The reactor thread exclusively owns the
  /// socket and the read-side fields; `mu` guards the fields shared with
  /// workers (pending queue, outbox, in-flight accounting). Held by
  /// shared_ptr so a worker finishing after the reactor destroyed the
  /// connection touches valid memory.
  struct RConn {
    SocketFd sock;
    uint64_t id = 0;  ///< poller tag and rconns_ key

    // Reactor-only.
    std::string inbuf;         ///< unparsed inbound bytes
    size_t in_off = 0;         ///< parse offset into inbuf
    std::string wbuf;          ///< outbox entry currently being written
    size_t wbuf_off = 0;       ///< write offset into wbuf
    int64_t last_read_us = 0;  ///< last byte received (idle-timeout scan)
    bool want_write = false;   ///< poller interest includes kWritable
    bool read_paused = false;  ///< kReadable dropped (in-flight cap)
    bool read_eof = false;     ///< peer half-closed; drain buffered frames
    bool read_closed = false;  ///< teardown queued / draining: stop reading
    bool dead = false;         ///< destroyed; late flush requests are no-ops
    bool timeout_fired = false;  ///< idle-timeout teardown already queued

    // Shared with workers (guarded by mu).
    std::mutex mu;
    std::deque<PendingReq> pending;  ///< decoded, waiting for a worker
    bool scheduled = false;          ///< on the worker queue / being worked
    int inflight = 0;  ///< decoded requests not yet fully flushed
    std::deque<std::string> outbox;  ///< encoded reply frames, in order
    bool close_after_flush = false;
    bool stop_after_flush = false;  ///< kShutdown: flush, then RequestStop
  };

  void ReactorLoop();
  void WorkerLoop();
  /// Accepts until EAGAIN or the connection cap parks the listener.
  void AcceptReady();
  /// Reads available bytes, assembles frames, queues work.
  void ReadReady(const std::shared_ptr<RConn>& conn);
  /// Decodes complete frames out of conn->inbuf into the pending queue.
  void ParseFrames(const std::shared_ptr<RConn>& conn);
  /// Queues a framing-violation teardown (best-effort error reply, then
  /// close) behind any already-pipelined requests.
  void QueueTeardown(const std::shared_ptr<RConn>& conn, Status error);
  /// Writes outbox bytes until EAGAIN or empty; handles close/stop flags.
  void FlushConn(const std::shared_ptr<RConn>& conn);
  /// Re-applies the poller interest mask derived from the conn flags.
  void UpdateInterest(const std::shared_ptr<RConn>& conn);
  /// Tears the connection down now: deregisters, closes, forgets.
  void DestroyConn(const std::shared_ptr<RConn>& conn);
  /// Cuts idle connections and queues DeadlineExceeded teardowns for peers
  /// quiet longer than read_timeout_ms.
  void ScanIdle(int64_t now_us);
  /// Drain tick: stop reading everywhere, close connections as they go
  /// idle, and mark the drain complete when none remain.
  void DrainTick();
  /// Re-arms the parked listener when a slot frees up.
  void MaybeResumeAccept();

  Poller poller_;
  WakePipe wake_;
  std::thread reactor_thread_;
  std::vector<std::thread> worker_threads_;
  int worker_count_ = 0;
  /// Reactor-only: live connections by id (the poller tag).
  std::unordered_map<uint64_t, std::shared_ptr<RConn>> rconns_;
  uint64_t next_conn_id_ = 2;  ///< 0 = listener tag, 1 = wake tag
  bool accept_parked_ = false;
  int64_t last_idle_scan_us_ = 0;

  /// Worker queue: connections with pending requests.
  std::mutex wq_mu_;
  std::condition_variable wq_cv_;
  std::deque<std::shared_ptr<RConn>> wq_;
  bool workers_stop_ = false;

  /// Flush channel: workers park connections here and Signal() the wake
  /// pipe; the reactor drains it every iteration.
  std::mutex flush_mu_;
  std::vector<std::shared_ptr<RConn>> flush_list_;

  std::atomic<bool> drain_complete_{false};

  // --- legacy thread-per-connection runtime --------------------------------

  /// A live (or finished) connection: its socket and thread. The struct's
  /// address is stable for the connection's lifetime (held by unique_ptr),
  /// so the connection thread works on a bare pointer.
  struct Connection {
    SocketFd sock;
    std::thread thread;
    std::atomic<bool> done{false};
    /// The connection thread is between "request decoded" and "reply
    /// written" — the work a graceful drain waits for.
    std::atomic<bool> in_flight{false};
  };

  /// Accept loop body (accept thread).
  void AcceptLoop();
  /// Per-connection loop body: frames in, replies out, until the peer
  /// closes, errors, or the daemon stops.
  void ServeConnection(Connection* conn);
  /// Joins and frees connections the moment they finish (no waiting for
  /// the next accept): connection threads announce themselves on
  /// finished_ and this thread reaps them.
  void ReaperLoop();

  std::thread accept_thread_;
  std::thread reaper_thread_;
  mutable std::mutex conns_mu_;  ///< guards conns_
  std::vector<std::unique_ptr<Connection>> conns_;
  std::mutex finished_mu_;
  std::condition_variable finished_cv_;
  std::deque<Connection*> finished_;
  bool reaper_stop_ = false;

  // --- common state --------------------------------------------------------

  SessionRegistry* registry_;
  ServerOptions options_;
  SocketFd listener_;
  uint16_t port_ = 0;
  std::atomic<bool> started_{false};
  std::atomic<bool> stop_requested_{false};
  /// Stop() is draining: no new connections; already-received requests
  /// finish and every connection hangs up once its replies are flushed.
  std::atomic<bool> draining_{false};
  std::atomic<int64_t> connections_shed_{0};
  std::atomic<int64_t> accept_backpressure_{0};
  std::atomic<int64_t> drain_duration_ms_{-1};  ///< -1 until a drain ran
  std::atomic<bool> drained_clean_{false};
  std::atomic<int64_t> active_conns_{0};
  std::atomic<int64_t> queue_depth_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
  mutable std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  /// Per-message-type request metrics, indexed by MsgType value.
  mutable std::array<OpMetrics, kNumMsgTypes> op_metrics_;
  WallTimer uptime_;
};

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_SERVER_HPP_
