#include "serve/manifest.hpp"

#include <cstring>
#include <utility>

#ifndef _WIN32
#include <unistd.h>
#endif

#include "util/failpoint.hpp"
#include "util/wire.hpp"

namespace nfacount {
namespace serve {

namespace {

constexpr char kManifestMagic[4] = {'N', 'F', 'M', 'F'};
constexpr size_t kManifestHeaderBytes = 8;
constexpr uint8_t kRecordRegister = 1;
constexpr uint8_t kRecordUnregister = 2;
// Entry framing overhead: u32 body length up front, u64 FNV-1a trailer.
constexpr size_t kEntryOverheadBytes = 12;
// Sanity bound on a declared body length — a registration is name + NFA
// text + scalars, and NFA text is itself bounded by the wire payload cap.
constexpr uint32_t kMaxEntryBodyBytes = 128u << 20;

// Same hash as the checkpoint trailer (fpras/checkpoint.cpp): one integrity
// primitive across every on-disk format this repo writes.
uint64_t Fnv1a64(const char* data, size_t size) {
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string HeaderBytes() {
  ByteWriter w;
  w.Bytes(kManifestMagic, sizeof(kManifestMagic));
  w.U32(kManifestVersion);
  return std::move(w.buffer());
}

// Builds one on-disk entry: u32 body length, body, u64 checksum.
std::string EncodeEntry(const std::string& body) {
  ByteWriter w;
  w.U32(static_cast<uint32_t>(body.size()));
  w.Bytes(body.data(), body.size());
  w.U64(Fnv1a64(body.data(), body.size()));
  return std::move(w.buffer());
}

std::string EncodeRegisterBody(const ManifestRecord& record) {
  ByteWriter w;
  w.U8(kRecordRegister);
  w.String(record.name);
  w.String(record.nfa_text);
  w.I32(record.horizon);
  w.U64(record.seed);
  w.F64(record.eps);
  w.F64(record.delta);
  w.U32(record.flags);
  return std::move(w.buffer());
}

std::string EncodeUnregisterBody(const std::string& name) {
  ByteWriter w;
  w.U8(kRecordUnregister);
  w.String(name);
  return std::move(w.buffer());
}

Status DecodeBody(const std::string& body,
                  std::map<std::string, ManifestRecord>* live) {
  ByteReader r(body.data(), body.size());
  uint8_t type = 0;
  NFA_RETURN_NOT_OK(r.U8(&type));
  if (type == kRecordRegister) {
    ManifestRecord record;
    NFA_RETURN_NOT_OK(r.String(&record.name, body.size()));
    NFA_RETURN_NOT_OK(r.String(&record.nfa_text, body.size()));
    NFA_RETURN_NOT_OK(r.I32(&record.horizon));
    NFA_RETURN_NOT_OK(r.U64(&record.seed));
    NFA_RETURN_NOT_OK(r.F64(&record.eps));
    NFA_RETURN_NOT_OK(r.F64(&record.delta));
    NFA_RETURN_NOT_OK(r.U32(&record.flags));
    if (r.remaining() != 0) {
      return Status::DataLoss("manifest: record has trailing bytes");
    }
    (*live)[record.name] = std::move(record);
    return Status::Ok();
  }
  if (type == kRecordUnregister) {
    std::string name;
    NFA_RETURN_NOT_OK(r.String(&name, body.size()));
    if (r.remaining() != 0) {
      return Status::DataLoss("manifest: record has trailing bytes");
    }
    live->erase(name);
    return Status::Ok();
  }
  return Status::DataLoss("manifest: unknown record type");
}

Status ReadWholeFile(const std::string& path, std::string* bytes,
                     bool* exists) {
  *exists = false;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::Ok();  // absent: a fresh journal
  *exists = true;
  bytes->clear();
  char buf[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes->append(buf, got);
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::DataLoss("manifest: read error: " + path);
  }
  return Status::Ok();
}

Status WriteFileSynced(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("manifest: cannot open for writing: " + path);
  }
  bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  if (ok && std::fflush(f) != 0) ok = false;
#ifndef _WIN32
  if (ok && fsync(fileno(f)) != 0) ok = false;
#endif
  if (std::fclose(f) != 0) ok = false;
  if (!ok) {
    std::remove(path.c_str());
    return Status::Unavailable("manifest: short write: " + path);
  }
  return Status::Ok();
}

}  // namespace

ManifestJournal::ManifestJournal(ManifestJournal&& other) noexcept
    : dir_(std::move(other.dir_)),
      path_(std::move(other.path_)),
      file_(other.file_),
      good_size_(other.good_size_),
      tail_dirty_(other.tail_dirty_),
      live_(std::move(other.live_)),
      replayed_records_(other.replayed_records_),
      dropped_tail_bytes_(other.dropped_tail_bytes_) {
  other.file_ = nullptr;
}

ManifestJournal& ManifestJournal::operator=(ManifestJournal&& other) noexcept {
  if (this == &other) return *this;
  if (file_ != nullptr) std::fclose(file_);
  dir_ = std::move(other.dir_);
  path_ = std::move(other.path_);
  file_ = other.file_;
  good_size_ = other.good_size_;
  tail_dirty_ = other.tail_dirty_;
  live_ = std::move(other.live_);
  replayed_records_ = other.replayed_records_;
  dropped_tail_bytes_ = other.dropped_tail_bytes_;
  other.file_ = nullptr;
  return *this;
}

ManifestJournal::~ManifestJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

Result<ManifestJournal> ManifestJournal::Open(const std::string& dir) {
  if (dir.empty()) {
    return Status::Invalid("manifest: spill directory is empty");
  }
  ManifestJournal journal;
  journal.dir_ = dir;
  journal.path_ = dir + "/MANIFEST";

  // A MANIFEST.tmp is a compaction the previous process never finished; the
  // rename never happened, so the real manifest is intact and the tmp is
  // garbage.
  std::remove((journal.path_ + ".tmp").c_str());

  std::string bytes;
  bool exists = false;
  NFA_RETURN_NOT_OK(ReadWholeFile(journal.path_, &bytes, &exists));

  bool needs_compaction = false;
  if (!exists || bytes.empty()) {
    NFA_RETURN_NOT_OK(WriteFileSynced(journal.path_, HeaderBytes()));
    journal.good_size_ = static_cast<int64_t>(kManifestHeaderBytes);
  } else {
    if (bytes.size() < kManifestHeaderBytes ||
        std::memcmp(bytes.data(), kManifestMagic, sizeof(kManifestMagic)) !=
            0) {
      return Status::Invalid("manifest: not a registry manifest (bad magic): " +
                             journal.path_);
    }
    ByteReader header(bytes.data() + sizeof(kManifestMagic), 4);
    uint32_t version = 0;
    NFA_RETURN_NOT_OK(header.U32(&version));
    if (version != kManifestVersion) {
      return Status::Invalid("manifest: unsupported version " +
                             std::to_string(version) + ": " + journal.path_);
    }

    // Replay: consume entries until the bytes run out or an entry fails its
    // framing or checksum — a torn tail from a crash mid-append. Everything
    // before the tear is authoritative; the tear itself was never
    // acknowledged to any caller.
    size_t pos = kManifestHeaderBytes;
    int64_t unregisters = 0;
    int64_t overwrites = 0;
    while (pos < bytes.size()) {
      ByteReader r(bytes.data() + pos, bytes.size() - pos);
      uint32_t body_len = 0;
      if (!r.U32(&body_len).ok() || body_len > kMaxEntryBodyBytes ||
          r.remaining() < body_len + 8) {
        break;  // torn tail
      }
      const char* body_data = bytes.data() + pos + 4;
      ByteReader tail(body_data + body_len, 8);
      uint64_t stored_sum = 0;
      if (!tail.U64(&stored_sum).ok() ||
          Fnv1a64(body_data, body_len) != stored_sum) {
        break;  // torn or corrupt tail
      }
      std::string body(body_data, body_len);
      const bool was_unregister =
          !body.empty() && static_cast<uint8_t>(body[0]) == kRecordUnregister;
      // Track dead records so Open can decide whether compaction pays.
      const size_t live_before = journal.live_.size();
      if (!DecodeBody(body, &journal.live_).ok()) break;
      if (was_unregister) {
        unregisters++;
      } else if (journal.live_.size() == live_before) {
        overwrites++;  // re-Register of a live name (last record wins)
      }
      journal.replayed_records_++;
      pos += kEntryOverheadBytes + body_len;
    }
    journal.dropped_tail_bytes_ = static_cast<int64_t>(bytes.size() - pos);
    journal.good_size_ = static_cast<int64_t>(pos);
    needs_compaction =
        journal.dropped_tail_bytes_ > 0 || unregisters > 0 || overwrites > 0;
  }

  if (needs_compaction) {
    NFA_RETURN_NOT_OK(journal.Compact());
  }
  return journal;
}

Status ManifestJournal::OpenForAppend() {
  if (file_ != nullptr) return Status::Ok();
  // "r+b" rather than "ab": append-mode writes ignore seeks, but healing a
  // torn tail needs to truncate and position explicitly.
  file_ = std::fopen(path_.c_str(), "r+b");
  if (file_ == nullptr) {
    return Status::Unavailable("manifest: cannot open for appending: " +
                               path_);
  }
  return Status::Ok();
}

Status ManifestJournal::AppendEntry(const std::string& entry) {
  NFA_RETURN_NOT_OK(OpenForAppend());
  if (tail_dirty_) {
    // A previous append failed partway; cut the file back to the last valid
    // entry so the new entry lands on a clean boundary.
#ifndef _WIN32
    if (ftruncate(fileno(file_), static_cast<off_t>(good_size_)) != 0) {
      return Status::Unavailable("manifest: cannot heal torn tail: " + path_);
    }
#endif
    tail_dirty_ = false;
  }
  if (std::fseek(file_, static_cast<long>(good_size_), SEEK_SET) != 0) {
    return Status::Unavailable("manifest: seek failed: " + path_);
  }

  const failpoint::Eval fault = failpoint::Check("manifest.append");
  if (fault.action == failpoint::Action::kError) {
    return Status::Unavailable("failpoint manifest.append: injected failure");
  }
  size_t to_write = entry.size();
  if (fault.action == failpoint::Action::kShortWrite &&
      static_cast<size_t>(fault.arg) < to_write) {
    // Injected crash mid-append: the torn bytes reach the disk (that is the
    // point — replay must stop at them), the entry is not acknowledged, and
    // the next successful append heals the tail first.
    to_write = static_cast<size_t>(fault.arg);
  }

  bool ok = std::fwrite(entry.data(), 1, to_write, file_) == entry.size();
  if (std::fflush(file_) != 0) ok = false;
#ifndef _WIN32
  if (fsync(fileno(file_)) != 0) ok = false;
#endif
  if (!ok) {
    tail_dirty_ = true;
    if (fault.fires()) {
      return Status::DataLoss("manifest: torn append (injected fault): " +
                              path_);
    }
    return Status::Unavailable("manifest: append failed: " + path_);
  }
  good_size_ += static_cast<int64_t>(entry.size());
  return Status::Ok();
}

Status ManifestJournal::AppendRegister(const ManifestRecord& record) {
  NFA_RETURN_NOT_OK(AppendEntry(EncodeEntry(EncodeRegisterBody(record))));
  live_[record.name] = record;
  return Status::Ok();
}

Status ManifestJournal::AppendUnregister(const std::string& name) {
  NFA_RETURN_NOT_OK(AppendEntry(EncodeEntry(EncodeUnregisterBody(name))));
  live_.erase(name);
  return Status::Ok();
}

Status ManifestJournal::Compact() {
  std::string bytes = HeaderBytes();
  for (const auto& entry : live_) {
    bytes += EncodeEntry(EncodeRegisterBody(entry.second));
  }
  // The checkpoint discipline: complete tmp, fsync, atomic rename. A crash
  // anywhere leaves either the old manifest or the new one, never a mix.
  const std::string tmp_path = path_ + ".tmp";
  NFA_RETURN_NOT_OK(WriteFileSynced(tmp_path, bytes));
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Unavailable("manifest: cannot move compacted manifest: " +
                               path_);
  }
  good_size_ = static_cast<int64_t>(bytes.size());
  tail_dirty_ = false;
  return Status::Ok();
}

}  // namespace serve
}  // namespace nfacount
