#include "serve/protocol.hpp"

#include <cstring>

#include "util/failpoint.hpp"

namespace nfacount {
namespace serve {

namespace {

/// Highest StatusCode value the reply codec round-trips (append-only enum).
constexpr uint16_t kMaxStatusCode =
    static_cast<uint16_t>(StatusCode::kDeadlineExceeded);

/// Decode epilogue: a request payload must be consumed exactly.
Status RejectTrailing(const ByteReader& r) {
  if (r.remaining() != 0) {
    return Status::DataLoss("request payload has trailing bytes");
  }
  return Status::Ok();
}

}  // namespace

Result<std::string> EncodeFrame(MsgType type, const std::string& payload) {
  if (payload.size() > kMaxPayloadBytes) {
    return Status::Invalid("frame payload exceeds the protocol limit");
  }
  ByteWriter w;
  w.Bytes(kFrameMagic, sizeof(kFrameMagic));
  // u16 fields little-endian via the u32-free path: two bytes each.
  w.U8(static_cast<uint8_t>(kProtocolVersion & 0xff));
  w.U8(static_cast<uint8_t>(kProtocolVersion >> 8));
  const uint16_t type_bits = static_cast<uint16_t>(type);
  w.U8(static_cast<uint8_t>(type_bits & 0xff));
  w.U8(static_cast<uint8_t>(type_bits >> 8));
  w.U32(static_cast<uint32_t>(payload.size()));
  w.Bytes(payload.data(), payload.size());
  return std::move(w.buffer());
}

Status DecodeFrameHeader(const char* data, size_t size, MsgType* type,
                         uint32_t* payload_len) {
  if (size < kFrameHeaderBytes) {
    return Status::Invalid("frame: header shorter than kFrameHeaderBytes");
  }
  if (std::memcmp(data, kFrameMagic, sizeof(kFrameMagic)) != 0) {
    return Status::Invalid("frame: bad magic");
  }
  ByteReader r(data + sizeof(kFrameMagic),
               kFrameHeaderBytes - sizeof(kFrameMagic));
  uint8_t lo = 0;
  uint8_t hi = 0;
  NFA_RETURN_NOT_OK(r.U8(&lo));
  NFA_RETURN_NOT_OK(r.U8(&hi));
  const uint16_t version = static_cast<uint16_t>(lo | (hi << 8));
  if (version != kProtocolVersion) {
    return Status::Invalid("frame: unsupported protocol version " +
                           std::to_string(version));
  }
  NFA_RETURN_NOT_OK(r.U8(&lo));
  NFA_RETURN_NOT_OK(r.U8(&hi));
  const uint16_t type_bits = static_cast<uint16_t>(lo | (hi << 8));
  if (type_bits >= kNumMsgTypes) {
    return Status::Invalid("frame: unknown message type " +
                           std::to_string(type_bits));
  }
  uint32_t declared = 0;
  NFA_RETURN_NOT_OK(r.U32(&declared));
  if (declared > kMaxPayloadBytes) {
    return Status::Invalid("frame: declared payload length exceeds limit");
  }
  *type = static_cast<MsgType>(type_bits);
  *payload_len = declared;
  return Status::Ok();
}

Status WriteFrame(const SocketFd& sock, MsgType type,
                  const std::string& payload) {
  Result<std::string> encoded = EncodeFrame(type, payload);
  NFA_RETURN_NOT_OK(encoded.status());
  const std::string& bytes = encoded.value();
  const failpoint::Eval fault = failpoint::Check("net.write");
  if (fault.action == failpoint::Action::kError) {
    return Status::Unavailable("failpoint net.write: injected failure");
  }
  if (fault.action == failpoint::Action::kShortWrite &&
      static_cast<size_t>(fault.arg) < bytes.size()) {
    // Injected mid-frame death: send the truncated prefix so the peer
    // exercises its DataLoss path, then report the failure to the caller.
    NFA_RETURN_NOT_OK(
        WriteFull(sock, bytes.data(), static_cast<size_t>(fault.arg)));
    return Status::Unavailable("frame write truncated (injected fault)");
  }
  return WriteFull(sock, bytes.data(), bytes.size());
}

Result<Frame> ReadFrame(const SocketFd& sock) {
  char header[kFrameHeaderBytes];
  NFA_RETURN_NOT_OK(ReadFull(sock, header, sizeof(header)));
  Frame frame;
  uint32_t payload_len = 0;
  NFA_RETURN_NOT_OK(
      DecodeFrameHeader(header, sizeof(header), &frame.type, &payload_len));
  frame.payload.resize(payload_len);
  if (payload_len > 0) {
    Status read = ReadFull(sock, frame.payload.data(), payload_len);
    if (!read.ok()) {
      // A clean close after the header still truncates THIS frame.
      if (read.code() == StatusCode::kNotFound) {
        return Status::DataLoss("frame: connection closed mid-frame");
      }
      return read;
    }
  }
  return frame;
}

std::string EncodeRegister(const RegisterRequest& req) {
  ByteWriter w;
  w.String(req.name);
  w.String(req.nfa_text);
  w.I32(req.horizon);
  w.U64(req.seed);
  w.F64(req.eps);
  w.F64(req.delta);
  return std::move(w.buffer());
}

Result<RegisterRequest> DecodeRegister(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  RegisterRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(r.String(&req.nfa_text, payload.size()));
  NFA_RETURN_NOT_OK(r.I32(&req.horizon));
  NFA_RETURN_NOT_OK(r.U64(&req.seed));
  NFA_RETURN_NOT_OK(r.F64(&req.eps));
  NFA_RETURN_NOT_OK(r.F64(&req.delta));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

std::string EncodeCount(const CountRequest& req) {
  ByteWriter w;
  w.String(req.name);
  w.I32(req.length);
  return std::move(w.buffer());
}

Result<CountRequest> DecodeCount(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  CountRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(r.I32(&req.length));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

std::string EncodeCountState(const CountStateRequest& req) {
  ByteWriter w;
  w.String(req.name);
  w.I32(req.state);
  w.I32(req.length);
  return std::move(w.buffer());
}

Result<CountStateRequest> DecodeCountState(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  CountStateRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(r.I32(&req.state));
  NFA_RETURN_NOT_OK(r.I32(&req.length));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

std::string EncodeSample(const SampleRequest& req) {
  ByteWriter w;
  w.String(req.name);
  w.I32(req.length);
  w.I64(req.count);
  return std::move(w.buffer());
}

Result<SampleRequest> DecodeSample(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  SampleRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(r.I32(&req.length));
  NFA_RETURN_NOT_OK(r.I64(&req.count));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

std::string EncodeExtend(const ExtendRequest& req) {
  ByteWriter w;
  w.String(req.name);
  w.I32(req.level);
  return std::move(w.buffer());
}

Result<ExtendRequest> DecodeExtend(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  ExtendRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(r.I32(&req.level));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

std::string EncodeEvict(const EvictRequest& req) {
  ByteWriter w;
  w.String(req.name);
  return std::move(w.buffer());
}

Result<EvictRequest> DecodeEvict(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  EvictRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

std::string EncodeUnregister(const UnregisterRequest& req) {
  ByteWriter w;
  w.String(req.name);
  return std::move(w.buffer());
}

Result<UnregisterRequest> DecodeUnregister(const std::string& payload) {
  ByteReader r(payload.data(), payload.size());
  UnregisterRequest req;
  NFA_RETURN_NOT_OK(r.String(&req.name, payload.size()));
  NFA_RETURN_NOT_OK(RejectTrailing(r));
  return req;
}

void WriteReplyStatus(const Status& status, ByteWriter* w) {
  const uint16_t code = static_cast<uint16_t>(status.code());
  w->U8(static_cast<uint8_t>(code & 0xff));
  w->U8(static_cast<uint8_t>(code >> 8));
  w->String(status.message());
}

Status ReadReplyStatus(ByteReader* r, Status* out) {
  uint8_t lo = 0;
  uint8_t hi = 0;
  NFA_RETURN_NOT_OK(r->U8(&lo));
  NFA_RETURN_NOT_OK(r->U8(&hi));
  const uint16_t code = static_cast<uint16_t>(lo | (hi << 8));
  if (code > kMaxStatusCode) {
    return Status::DataLoss("reply: unknown status code " +
                            std::to_string(code));
  }
  std::string message;
  NFA_RETURN_NOT_OK(r->String(&message, kMaxPayloadBytes));
  *out = code == 0 ? Status::Ok()
                   : Status(static_cast<StatusCode>(code), std::move(message));
  return Status::Ok();
}

void WriteWord(const Word& word, ByteWriter* w) {
  w->U32(static_cast<uint32_t>(word.size()));
  for (Symbol s : word) w->U16(s);
}

Status ReadWord(ByteReader* r, Word* out) {
  uint32_t len = 0;
  NFA_RETURN_NOT_OK(r->U32(&len));
  if (len > kMaxPayloadBytes / sizeof(uint16_t)) {
    return Status::DataLoss("reply: word length corrupt");
  }
  out->resize(len);
  for (uint32_t i = 0; i < len; ++i) {
    NFA_RETURN_NOT_OK(r->U16(&(*out)[i]));
  }
  return Status::Ok();
}

}  // namespace serve
}  // namespace nfacount
