// The serve-mode wire protocol: length-prefixed binary frames over TCP (see
// docs/FILE_FORMATS.md "Serve wire protocol" for the byte-level spec).
//
// Every message is one frame:
//
//   offset  size  field
//   0       4     magic 'N' 'F' 'S' 'V'
//   4       2     protocol version (u16 LE, currently 2)
//   6       2     message type (u16 LE, MsgType)
//   8       4     payload length (u32 LE, <= kMaxPayloadBytes)
//   12      len   payload (op-specific, util/wire.hpp encoding)
//
// Requests flow client → server; the server answers every request with one
// kReply frame whose payload starts with a status block (u16 code + string
// message) followed by an op-specific body when the status is OK. Framing
// violations are classified by the reader: a clean close between frames is
// NotFound ("end of stream"), a close mid-frame is DataLoss, bad magic /
// version / oversized declared length is InvalidArgument — the daemon turns
// all of them into clean connection teardown, never a crash.

#ifndef NFACOUNT_SERVE_PROTOCOL_HPP_
#define NFACOUNT_SERVE_PROTOCOL_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "automata/alphabet.hpp"
#include "util/net.hpp"
#include "util/status.hpp"
#include "util/wire.hpp"

namespace nfacount {
namespace serve {

/// Frame magic: 'N' 'F' 'S' 'V'.
constexpr char kFrameMagic[4] = {'N', 'F', 'S', 'V'};
/// Current protocol version. v2 widened sampled-word symbols from one byte
/// to u16 LE (16-bit alphabet support); the version check is strict, so v1
/// peers are rejected cleanly rather than mis-decoding words.
constexpr uint16_t kProtocolVersion = 2;
/// Hard cap on a declared payload length; larger declarations are rejected
/// before any allocation (InvalidArgument).
constexpr uint32_t kMaxPayloadBytes = 64u << 20;
/// Frame header size in bytes (magic + version + type + payload length).
constexpr size_t kFrameHeaderBytes = 12;

/// Message types. Requests are client → server; kReply is the only
/// server → client type.
enum class MsgType : uint16_t {
  kReply = 0,       ///< status block + op-specific body
  kPing = 1,        ///< empty payload; replies OK
  kRegister = 2,    ///< RegisterRequest
  kCount = 3,       ///< CountRequest → F64 estimate
  kCountState = 4,  ///< CountStateRequest → F64 estimate
  kSample = 5,      ///< SampleRequest → U64 cursor + words
  kExtend = 6,      ///< ExtendRequest → I32 computed level
  kStats = 7,       ///< empty payload → String json
  kEvict = 8,       ///< EvictRequest → U8 was-resident flag
  kShutdown = 9,    ///< empty payload; replies OK, then the daemon stops
  kUnregister = 10, ///< UnregisterRequest; removes a session durably
};

/// Number of distinct message types (metrics array size).
constexpr int kNumMsgTypes = 11;

/// One decoded frame: the type tag and the raw payload bytes.
struct Frame {
  MsgType type = MsgType::kReply;  ///< message type from the header
  std::string payload;             ///< payload bytes (possibly empty)
};

/// Registers a named session built from an automaton in the io.hpp text
/// format, with parameters derived at `horizon`.
struct RegisterRequest {
  std::string name;      ///< session name, [A-Za-z0-9_.-]{1,128}
  std::string nfa_text;  ///< automaton (automata/io.hpp text format)
  int32_t horizon = 0;   ///< session horizon (fixes parameter derivation)
  uint64_t seed = 0;     ///< seed of the randomized run
  double eps = 0.3;      ///< accuracy ε
  double delta = 0.2;    ///< failure probability δ
};

/// |L(A_length)| query against a named session.
struct CountRequest {
  std::string name;    ///< session name
  int32_t length = 0;  ///< word length
};

/// Per-state N(q^length) query against a named session.
struct CountStateRequest {
  std::string name;    ///< session name
  int32_t state = 0;   ///< state id q
  int32_t length = 0;  ///< level ℓ
};

/// Draws `count` words from L(A_length) of a named session.
struct SampleRequest {
  std::string name;    ///< session name
  int32_t length = 0;  ///< word length
  int64_t count = 0;   ///< number of words to draw
};

/// Extends a named session's computed prefix to `level`.
struct ExtendRequest {
  std::string name;   ///< session name
  int32_t level = 0;  ///< target level
};

/// Demotes a named session to its disk checkpoint now.
struct EvictRequest {
  std::string name;  ///< session name
};

/// Removes a named session entirely: drops it from memory, deletes its
/// checkpoint, and journals the removal so recovery will not resurrect it.
struct UnregisterRequest {
  std::string name;  ///< session name
};

/// Builds the full wire image of one frame (header + payload). Payloads
/// larger than kMaxPayloadBytes are refused (InvalidArgument). This is the
/// single encoder shared by the blocking WriteFrame path and the reactor's
/// buffered writeback — both emit byte-identical frames.
Result<std::string> EncodeFrame(MsgType type, const std::string& payload);

/// Validates a frame header sitting in a caller-owned buffer (the reactor's
/// per-connection read buffer). `size` must be >= kFrameHeaderBytes. On OK
/// stores the message type and declared payload length; classification
/// matches ReadFrame: bad magic / version / unknown type / oversize are all
/// InvalidArgument.
Status DecodeFrameHeader(const char* data, size_t size, MsgType* type,
                         uint32_t* payload_len);

/// Writes one frame (header + payload) to `sock`. Payloads larger than
/// kMaxPayloadBytes are refused (InvalidArgument). Honors the `net.write`
/// failpoint (util/failpoint.hpp): the short-write action sends only a
/// prefix of the encoded frame and reports Unavailable — simulating a peer
/// that dies mid-frame.
Status WriteFrame(const SocketFd& sock, MsgType type,
                  const std::string& payload);

/// Reads one frame from `sock`, validating magic, version, and declared
/// payload length before allocating. Error classification: clean close
/// between frames → NotFound; close mid-frame → DataLoss; bad magic/version/
/// oversize → InvalidArgument; receive timeout → DeadlineExceeded.
Result<Frame> ReadFrame(const SocketFd& sock);

/// @name Request payload codecs
/// Encode builds the payload string; Decode parses one and rejects trailing
/// bytes (DataLoss), so a malformed request can never be half-read.
/// @{
std::string EncodeRegister(const RegisterRequest& req);
Result<RegisterRequest> DecodeRegister(const std::string& payload);
std::string EncodeCount(const CountRequest& req);
Result<CountRequest> DecodeCount(const std::string& payload);
std::string EncodeCountState(const CountStateRequest& req);
Result<CountStateRequest> DecodeCountState(const std::string& payload);
std::string EncodeSample(const SampleRequest& req);
Result<SampleRequest> DecodeSample(const std::string& payload);
std::string EncodeExtend(const ExtendRequest& req);
Result<ExtendRequest> DecodeExtend(const std::string& payload);
std::string EncodeEvict(const EvictRequest& req);
Result<EvictRequest> DecodeEvict(const std::string& payload);
std::string EncodeUnregister(const UnregisterRequest& req);
Result<UnregisterRequest> DecodeUnregister(const std::string& payload);
/// @}

/// Appends the reply status block (u16 code + string message) to `w`.
void WriteReplyStatus(const Status& status, ByteWriter* w);

/// Reads a reply status block from `r` into *out, reconstructing the Status
/// (OK when the code is 0). Unknown code values and truncation are reported
/// via the return value (DataLoss); *out is only meaningful on OK return.
Status ReadReplyStatus(ByteReader* r, Status* out);

/// Appends a word (u32 symbol count + one u16 LE per symbol) to `w`.
void WriteWord(const Word& word, ByteWriter* w);

/// Reads a word written by WriteWord; lengths above kMaxPayloadBytes are
/// DataLoss.
Status ReadWord(ByteReader* r, Word* out);

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_PROTOCOL_HPP_
