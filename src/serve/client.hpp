// ServeClient — a blocking, single-connection client for the serve-mode
// wire protocol (serve/protocol.hpp). The typed helpers run one request at
// a time; the Send*/Read* split lets a caller pipeline N requests onto the
// wire before reading the N replies back (the daemon answers in request
// order). Open several clients for connection-level concurrency. Used by
// tests, bench_e16_serve, bench_e18_serve_scaling, and the nfa_client
// example binary.

#ifndef NFACOUNT_SERVE_CLIENT_HPP_
#define NFACOUNT_SERVE_CLIENT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/net.hpp"

namespace nfacount {
namespace serve {

/// One SampleWords reply: the words plus where in the session's
/// deterministic draw stream this chunk started (for reassembling the
/// stream across concurrent clients).
struct SampleResult {
  int64_t cursor_start = 0;  ///< first attempt cursor of this chunk
  std::vector<Word> words;   ///< the drawn words, in stream order
};

/// Client-side retry policy: bounded attempts with exponential backoff and
/// decorrelated jitter (each delay is drawn uniformly from [base, 3×previous
/// delay], capped), so a fleet of shed clients spreads out instead of
/// re-stampeding the daemon in lockstep.
struct RetryPolicy {
  int max_attempts = 5;     ///< total attempts (1 = no retry)
  int base_delay_ms = 10;   ///< first delay / jitter floor
  int max_delay_ms = 2000;  ///< delay cap
  uint64_t seed = 0;        ///< jitter RNG seed (0 = a fixed default)
};

/// A connected serve-mode client. Movable, not copyable.
class ServeClient {
 public:
  /// Connects to a daemon on 127.0.0.1:`port`.
  static Result<ServeClient> Connect(uint16_t port);

  /// Connects under `policy`, retrying two retryable outcomes: the TCP
  /// connect failing (daemon not up yet / restarting) and the daemon
  /// shedding the connection under load (its status-only Unavailable
  /// greeting, observed by a Ping probe — so a returned client is proven
  /// live, not shed). Non-retryable errors and attempt exhaustion return
  /// the last status.
  static Result<ServeClient> ConnectWithRetry(uint16_t port,
                                              const RetryPolicy& policy);

  /// Round-trips an empty kPing frame.
  Status Ping();
  /// Registers a named session on the daemon.
  Status Register(const RegisterRequest& req);
  /// |L(A_length)| of the named session.
  Result<double> CountAtLength(const std::string& name, int length);
  /// N(q^length) of the named session.
  Result<double> CountFor(const std::string& name, int32_t state, int length);
  /// Draws `count` words from L(A_length) of the named session.
  Result<SampleResult> SampleWords(const std::string& name, int length,
                                   int64_t count);
  /// Extends the named session to `level`; returns the computed level.
  Result<int> ExtendTo(const std::string& name, int level);
  /// Demotes the named session to its checkpoint; true iff it was resident.
  Result<bool> Evict(const std::string& name);
  /// Removes the named session durably (journal tombstone + checkpoint
  /// deletion); the name is free for re-registration afterwards.
  Status Unregister(const std::string& name);
  /// The daemon's stats JSON document.
  Result<std::string> Stats();
  /// Asks the daemon to stop (it replies OK first).
  Status Shutdown();

  /// @name Pipelined API
  /// Send any number of requests back-to-back, then read the replies in the
  /// same order. The daemon's reactor answers each connection strictly in
  /// request order, so the k-th ReadReplyBody() matches the k-th send.
  /// Interleaving with the typed round-trip helpers is fine as long as every
  /// outstanding reply is read first.
  /// @{
  /// Writes one request frame; does not wait for the reply.
  Status SendRequest(MsgType type, const std::string& payload);
  /// Reads the next kReply frame: propagates transport errors and non-OK
  /// reply statuses; on OK returns the reply body (the bytes after the
  /// status block).
  Result<std::string> ReadReplyBody();
  /// Sends a kCount request for |L(A_length)| (pair with ReadCountReply).
  Status SendCount(const std::string& name, int length);
  /// Reads a kCount reply and decodes the F64 estimate.
  Result<double> ReadCountReply();
  /// @}

  /// The underlying socket — exposed so fault-injection tests can push raw
  /// malformed bytes at the daemon (and half-close via ShutdownWrite()).
  SocketFd& socket() { return sock_; }

 private:
  explicit ServeClient(SocketFd sock) : sock_(std::move(sock)) {}

  /// SendRequest + ReadReplyBody: one blocking request/reply exchange.
  Result<std::string> RoundTrip(MsgType type, const std::string& payload);

  SocketFd sock_;
};

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_CLIENT_HPP_
