// ServeClient — a blocking, single-connection client for the serve-mode
// wire protocol (serve/protocol.hpp). One request in flight at a time;
// open several clients for concurrency (the daemon serves each connection
// on its own thread). Used by tests, bench_e16_serve, and the nfa_client
// example binary.

#ifndef NFACOUNT_SERVE_CLIENT_HPP_
#define NFACOUNT_SERVE_CLIENT_HPP_

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.hpp"
#include "util/net.hpp"

namespace nfacount {
namespace serve {

/// One SampleWords reply: the words plus where in the session's
/// deterministic draw stream this chunk started (for reassembling the
/// stream across concurrent clients).
struct SampleResult {
  int64_t cursor_start = 0;  ///< first attempt cursor of this chunk
  std::vector<Word> words;   ///< the drawn words, in stream order
};

/// Client-side retry policy: bounded attempts with exponential backoff and
/// decorrelated jitter (each delay is drawn uniformly from [base, 3×previous
/// delay], capped), so a fleet of shed clients spreads out instead of
/// re-stampeding the daemon in lockstep.
struct RetryPolicy {
  int max_attempts = 5;     ///< total attempts (1 = no retry)
  int base_delay_ms = 10;   ///< first delay / jitter floor
  int max_delay_ms = 2000;  ///< delay cap
  uint64_t seed = 0;        ///< jitter RNG seed (0 = a fixed default)
};

/// A connected serve-mode client. Movable, not copyable.
class ServeClient {
 public:
  /// Connects to a daemon on 127.0.0.1:`port`.
  static Result<ServeClient> Connect(uint16_t port);

  /// Connects under `policy`, retrying two retryable outcomes: the TCP
  /// connect failing (daemon not up yet / restarting) and the daemon
  /// shedding the connection under load (its status-only Unavailable
  /// greeting, observed by a Ping probe — so a returned client is proven
  /// live, not shed). Non-retryable errors and attempt exhaustion return
  /// the last status.
  static Result<ServeClient> ConnectWithRetry(uint16_t port,
                                              const RetryPolicy& policy);

  /// Round-trips an empty kPing frame.
  Status Ping();
  /// Registers a named session on the daemon.
  Status Register(const RegisterRequest& req);
  /// |L(A_length)| of the named session.
  Result<double> CountAtLength(const std::string& name, int length);
  /// N(q^length) of the named session.
  Result<double> CountFor(const std::string& name, int32_t state, int length);
  /// Draws `count` words from L(A_length) of the named session.
  Result<SampleResult> SampleWords(const std::string& name, int length,
                                   int64_t count);
  /// Extends the named session to `level`; returns the computed level.
  Result<int> ExtendTo(const std::string& name, int level);
  /// Demotes the named session to its checkpoint; true iff it was resident.
  Result<bool> Evict(const std::string& name);
  /// Removes the named session durably (journal tombstone + checkpoint
  /// deletion); the name is free for re-registration afterwards.
  Status Unregister(const std::string& name);
  /// The daemon's stats JSON document.
  Result<std::string> Stats();
  /// Asks the daemon to stop (it replies OK first).
  Status Shutdown();

  /// The underlying socket — exposed so fault-injection tests can push raw
  /// malformed bytes at the daemon.
  SocketFd& socket() { return sock_; }

 private:
  explicit ServeClient(SocketFd sock) : sock_(std::move(sock)) {}

  /// Sends one request frame and reads the kReply: propagates transport
  /// errors and non-OK reply statuses; on OK returns the reply body (the
  /// bytes after the status block).
  Result<std::string> RoundTrip(MsgType type, const std::string& payload);

  SocketFd sock_;
};

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_CLIENT_HPP_
