// SessionRegistry — the daemon's pool of named EngineSessions, independent
// of any socket (tests drive it directly with threads; serve/server.cpp
// fronts it with the wire protocol).
//
// Concurrency model (docs/ARCHITECTURE.md "Serve mode"):
//   - Each named session lives in one Slot. Queries pin the slot's residency
//     with a shared lock (readers never block each other); demotion and
//     revival take it exclusively.
//   - Queries inside the published prefix go through the session's Shared*
//     surface — lock-free counts, draw-mutex-serialized samples. A query
//     past the published prefix becomes a writer: it takes the slot's
//     writer mutex (one extender per session) and runs ExtendTo, which
//     publishes each level as it completes — concurrent readers keep
//     answering against the growing prefix throughout.
//   - Eviction: after each operation, while the sum of resident table bytes
//     exceeds the budget, the least-recently-used slot whose residency lock
//     is free is demoted — EngineSession::Save to <spill_dir>/<name>.ckpt
//     (the PR 6 crash-safe path), then the in-memory session is dropped.
//     The next query revives it transparently via EngineSession::Load;
//     counter-keyed draw streams continue exactly where they stopped.
//
// Durability (docs/ARCHITECTURE.md "Durability & crash recovery"): with a
// spill directory configured, every Register/Unregister is journaled to
// <spill_dir>/MANIFEST (serve/manifest.hpp) before it is acknowledged, and
// Recover() rebuilds a crashed daemon's registry from the journal: sessions
// with a valid checkpoint revive lazily from it (draw cursor included);
// sessions whose checkpoint is missing are recomputed from the registration
// tuple on first touch — bit-identical by the determinism contract; sessions
// whose checkpoint is corrupt are quarantined (<name>.ckpt.corrupt) and
// recomputed the same way. A corrupt checkpoint therefore costs a rebuild,
// never an error and never the session.

#ifndef NFACOUNT_SERVE_REGISTRY_HPP_
#define NFACOUNT_SERVE_REGISTRY_HPP_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "fpras/session.hpp"
#include "serve/manifest.hpp"
#include "util/json.hpp"

namespace nfacount {
namespace serve {

/// Registry-wide configuration.
struct RegistryOptions {
  /// Directory for demoted sessions' checkpoints. Must exist and be
  /// writable; "" disables demotion (eviction becomes a no-op).
  std::string spill_dir;
  /// Total resident-table budget in bytes; < 0 = unlimited (no eviction).
  int64_t memory_budget_bytes = -1;
  /// Runtime knobs applied to every created and revived session (results
  /// are knob-invariant; this only tunes wall-clock).
  SessionKnobs knobs;
};

/// A pool of named EngineSessions with shared-read queries, single-writer
/// extension, and LRU demotion to disk checkpoints. All public methods are
/// thread-safe.
class SessionRegistry {
 public:
  /// The options are fixed for the registry's lifetime.
  explicit SessionRegistry(RegistryOptions options);

  /// Creates and registers a session named `name` for the automaton in
  /// `nfa_text` (automata/io.hpp format) with parameters derived at
  /// `horizon`. Invalid when the name is malformed or already registered.
  /// With a spill directory, the registration is journaled durably before
  /// it is acknowledged — a journal append failure fails the Register.
  Status Register(const std::string& name, const std::string& nfa_text,
                  int horizon, uint64_t seed, double eps, double delta);

  /// Removes session `name` durably: journals the removal, drops the
  /// in-memory session, and deletes its checkpoint (and any quarantine
  /// file). The name is free for re-registration afterwards. In-flight
  /// queries already past lookup finish against the old session.
  Status Unregister(const std::string& name);

  /// Rebuilds the registry from <spill_dir>/MANIFEST after a crash or
  /// restart: sweeps orphaned *.ckpt.tmp files, replays the journal, and
  /// creates one slot per surviving registration — lazily revived from its
  /// checkpoint when the checkpoint passes validation, lazily recomputed
  /// from the registration tuple when it is missing, and quarantined to
  /// <name>.ckpt.corrupt + lazily recomputed when it is corrupt. Recovery
  /// itself never fails on bad session data (only on an unusable spill
  /// directory) and requires an empty registry (call before serving).
  Status Recover();

  /// Demotes every resident session to its checkpoint (the drain step of a
  /// graceful shutdown — after SaveAll a clean restart loses nothing, draw
  /// cursors included). Blocks behind in-flight queries. Returns the first
  /// demotion failure but still attempts every slot; without a spill
  /// directory it is a no-op.
  Status SaveAll();

  /// |L(A_length)| for session `name`; extends the session when `length` is
  /// past the published prefix (writer path), answers lock-free otherwise.
  Result<double> CountAtLength(const std::string& name, int length);

  /// N(q^length) for session `name`; same extension rule as CountAtLength.
  Result<double> CountFor(const std::string& name, StateId q, int length);

  /// Draws `count` words from L(A_length) of session `name`. The chunk
  /// consumes a contiguous range of the session's deterministic draw
  /// stream; *cursor_start (when non-null) receives the range's first
  /// attempt cursor so concurrent callers can reassemble the sequence.
  Result<std::vector<Word>> SampleWords(const std::string& name, int length,
                                        int64_t count,
                                        int64_t* cursor_start = nullptr);

  /// Extends session `name` to `level`; returns the resulting computed
  /// level. The explicit form of the writer path.
  Result<int> ExtendTo(const std::string& name, int level);

  /// Demotes session `name` to its checkpoint now (regardless of budget).
  /// Returns true when it was resident and is now demoted, false when it
  /// was already demoted. FailedPrecondition when no spill dir is set.
  Result<bool> Evict(const std::string& name);

  /// Renders registry stats (session counts, resident bytes, demotions /
  /// revives, per-session state) into `out`.
  void RenderStats(JsonObject* out) const;

  /// Sum of the resident sessions' approximate table bytes.
  int64_t resident_bytes() const;
  /// Demotions performed so far (budget-driven + explicit Evict).
  int64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  /// Transparent revivals performed so far.
  int64_t revives() const { return revives_.load(std::memory_order_relaxed); }
  /// Sessions rebuilt by Recover() (revivable + recomputable alike).
  int64_t sessions_recovered() const {
    return sessions_recovered_.load(std::memory_order_relaxed);
  }
  /// Corrupt checkpoints renamed to <name>.ckpt.corrupt so far.
  int64_t checkpoints_quarantined() const {
    return checkpoints_quarantined_.load(std::memory_order_relaxed);
  }
  /// Sessions recomputed from their registration tuple (checkpoint missing
  /// or quarantined) so far.
  int64_t recomputes() const {
    return recomputes_.load(std::memory_order_relaxed);
  }
  /// Orphaned *.ckpt.tmp files swept from the spill directory so far.
  int64_t tmp_swept() const {
    return tmp_swept_.load(std::memory_order_relaxed);
  }

  /// True iff `name` matches [A-Za-z0-9_.-]{1,128} — the names safe to embed
  /// in a spill path (no separators, no traversal, no empties).
  static bool ValidName(const std::string& name);

 private:
  /// One named session and its coordination state. Slots are created by
  /// Register/Recover and never destroyed while the registry lives
  /// (Unregister retires them to a graveyard instead of deleting), so bare
  /// Slot pointers handed out under the map lock stay valid.
  struct Slot {
    std::string name;          ///< registered name (spill file stem)
    std::string ckpt_path;     ///< spill path ("" when spilling is disabled)
    /// Registration tuple — with the determinism contract, a complete
    /// recipe for rebuilding the session bit-identically from nothing.
    std::string nfa_text;      ///< automaton (automata/io.hpp text format)
    int horizon = 0;           ///< session horizon
    uint64_t seed = 0;         ///< seed of the randomized run
    double eps = 0.3;          ///< accuracy ε
    double delta = 0.2;        ///< failure probability δ
    /// Resolved symbol-class setting of the original session (the one knob
    /// that is envelope- rather than bit-preserving, so a rebuild must pin
    /// it).
    bool symbol_classes = true;
    /// Residency pin: shared = a query is using `session`, exclusive =
    /// demote/revive swapping it.
    std::shared_mutex mu;
    /// Single-writer extension fence (held with mu-shared during extension
    /// and draws that extend).
    std::mutex writer_mu;
    /// Resident session; null while demoted to `ckpt_path` (or, after
    /// Recover, while awaiting first-touch revival/recompute).
    std::unique_ptr<EngineSession> session;
    /// A checkpoint believed valid exists on disk (written by demotion or
    /// found intact during recovery).
    bool spilled = false;
    /// Unregistered: the slot survives in the graveyard for in-flight
    /// pointer holders, but every new pin fails NotFound.
    std::atomic<bool> dead{false};
    /// LRU clock stamp of the last operation touching this slot.
    std::atomic<uint64_t> last_used{0};
    /// Last measured ApproxResidentBytes (0 while demoted).
    std::atomic<int64_t> bytes{0};
  };

  /// Looks up a slot by (validated) name; NotFound for unknown names.
  Result<Slot*> FindSlot(const std::string& name);

  /// Ensures the slot's session is resident and returns with slot->mu held
  /// shared (caller releases via the returned lock). A demoted slot revives
  /// from its checkpoint; a slot whose checkpoint is missing or corrupt
  /// (quarantined on the spot) is recomputed from the registration tuple —
  /// so the only failures are NotFound (unregistered concurrently) and a
  /// recompute failure, which would require the original Register's inputs
  /// to have stopped working.
  Result<std::shared_lock<std::shared_mutex>> PinResident(Slot* slot);

  /// Rebuilds a session from the slot's registration tuple (counts and
  /// tables bit-identical to the lost original; the draw cursor restarts
  /// at 0 — only a checkpoint carries draw progress).
  Result<EngineSession> CreateFromTuple(const Slot& slot) const;

  /// Renames the slot's checkpoint to <name>.ckpt.corrupt (best effort)
  /// and bumps the quarantine counter. Residency lock held exclusively.
  void QuarantineCheckpointLocked(Slot* slot);

  /// Opens the manifest journal on first use (register_mu_ held).
  Status EnsureManifestLocked();

  /// Deletes orphaned *.ckpt.tmp files in the spill directory (crash
  /// between a checkpoint's tmp-write and rename leaks one).
  void SweepOrphanedTmps();

  /// Runs budget-driven LRU demotion until under budget or nothing
  /// evictable remains. Never blocks on a busy slot (try-lock skip).
  void EnforceBudget();

  /// Demotes one slot (residency lock already held exclusively).
  Status DemoteLocked(Slot* slot);

  RegistryOptions options_;
  /// Serializes Register/Unregister/Recover so the manifest's record order
  /// matches the registry's visible state transitions.
  std::mutex register_mu_;
  /// The durable journal; engaged lazily when a spill dir is configured.
  std::optional<ManifestJournal> manifest_;
  mutable std::mutex map_mu_;  ///< guards slots_ and retired_ (brief lookups)
  std::map<std::string, std::unique_ptr<Slot>> slots_;
  /// Unregistered slots, kept alive for the registry's lifetime so Slot
  /// pointers held by in-flight operations never dangle.
  std::vector<std::unique_ptr<Slot>> retired_;
  std::atomic<uint64_t> clock_{0};       ///< LRU clock
  std::atomic<int64_t> demotions_{0};
  std::atomic<int64_t> revives_{0};
  std::atomic<int64_t> demote_failures_{0};
  std::atomic<int64_t> sessions_recovered_{0};
  std::atomic<int64_t> checkpoints_quarantined_{0};
  std::atomic<int64_t> recomputes_{0};
  std::atomic<int64_t> tmp_swept_{0};
};

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_REGISTRY_HPP_
