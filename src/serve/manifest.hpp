// The registry manifest — serve mode's durable record of what is registered.
//
// A SessionRegistry with a spill directory journals every Register and
// Unregister to `<spill_dir>/MANIFEST` as append-only, checksummed records
// carrying the full registration tuple (name, automaton text, horizon, seed,
// eps, delta) plus resolved knob flags. Because the engine is deterministic
// by construction (counter-keyed per-(q,ℓ) RNG substreams), that tuple is
// sufficient to rebuild a session bit-identically from nothing — the
// manifest turns a daemon crash from "every session lost" into "every
// session rebuilt, from its checkpoint when the checkpoint is intact and
// from scratch when it is not".
//
// Byte format (docs/FILE_FORMATS.md "Registry manifest"): an 8-byte header
// (magic "NFMF", u32 version 1) followed by entries
//
//   u32  body length L
//   L    body: u8 record type (1=Register, 2=Unregister) + payload
//   u64  FNV-1a 64 over the body bytes
//
// all little-endian, same wire codec and hash as session checkpoints.
// Replay applies records in order, last record per name wins; it stops
// cleanly at the first truncated or checksum-failing entry — exactly what a
// crash mid-append leaves behind — so a torn tail costs at most the record
// being written when the process died (which the crashed Register never
// acknowledged).
//
// Appends are fflush+fsync'd before they are acknowledged. Compaction
// (dropping dead records) rewrites through the same tmp + fsync + atomic
// rename path as checkpoints, so the manifest is old-or-new at every
// instant. The `manifest.append` failpoint (util/failpoint.hpp) injects
// append failures, including crash-like torn writes.

#ifndef NFACOUNT_SERVE_MANIFEST_HPP_
#define NFACOUNT_SERVE_MANIFEST_HPP_

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "util/status.hpp"

namespace nfacount {
namespace serve {

/// Current manifest format version (readers reject unknown versions).
inline constexpr uint32_t kManifestVersion = 1;

/// ManifestRecord::flags bit: the symbol_classes value recorded from the
/// session's resolved parameters (bit set = compression on).
inline constexpr uint32_t kManifestFlagSymbolClasses = 1u << 0;

/// One live registration: everything needed to rebuild the session
/// bit-identically (modulo the draw cursor, which lives in the checkpoint).
struct ManifestRecord {
  std::string name;      ///< session name, [A-Za-z0-9_.-]{1,128}
  std::string nfa_text;  ///< automaton (automata/io.hpp text format)
  int32_t horizon = 0;   ///< session horizon (fixes parameter derivation)
  uint64_t seed = 0;     ///< seed of the randomized run
  double eps = 0.3;      ///< accuracy ε
  double delta = 0.2;    ///< failure probability δ
  uint32_t flags = 0;    ///< resolved knob flags (kManifestFlag*)
};

/// The append-only journal over `<dir>/MANIFEST`. Not internally
/// synchronized: the registry serializes all calls behind its registration
/// mutex. Move-only (owns the append handle).
class ManifestJournal {
 public:
  /// Opens (creating if absent) the journal in `dir`, replays it into the
  /// live map, sweeps a stale MANIFEST.tmp from an interrupted compaction,
  /// and compacts when replay found dead records or a torn tail. Errors:
  /// InvalidArgument for a file that is not a manifest (bad magic/version),
  /// Unavailable when the directory is not writable.
  static Result<ManifestJournal> Open(const std::string& dir);

  ManifestJournal(ManifestJournal&& other) noexcept;
  ManifestJournal& operator=(ManifestJournal&& other) noexcept;
  ManifestJournal(const ManifestJournal&) = delete;
  ManifestJournal& operator=(const ManifestJournal&) = delete;
  ~ManifestJournal();

  /// Appends a Register record and syncs it to stable storage. The record
  /// is in `live()` afterwards. On failure the in-memory map is unchanged
  /// and the file is healed (truncated back) before the next append.
  Status AppendRegister(const ManifestRecord& record);

  /// Appends an Unregister record and syncs it; removes `name` from
  /// `live()`. Appending for a name not currently live is allowed (the
  /// record is a harmless tombstone).
  Status AppendUnregister(const std::string& name);

  /// Rewrites the manifest to exactly one Register record per live session
  /// (tmp + fsync + atomic rename; the old manifest survives any failure).
  Status Compact();

  /// The surviving registrations, by name, in replay order semantics
  /// (last record per name won).
  const std::map<std::string, ManifestRecord>& live() const { return live_; }

  /// Records successfully replayed by Open (Registers + Unregisters).
  int64_t replayed_records() const { return replayed_records_; }
  /// Bytes of torn tail Open discarded (0 for a clean manifest).
  int64_t dropped_tail_bytes() const { return dropped_tail_bytes_; }
  /// The journal file path (`<dir>/MANIFEST`).
  const std::string& path() const { return path_; }

 private:
  ManifestJournal() = default;

  /// (Re)opens the append handle positioned at `good_size_`, healing any
  /// torn bytes a failed append left past it.
  Status OpenForAppend();
  /// Appends one encoded entry with fsync; heals the tail first when a
  /// previous append failed partway.
  Status AppendEntry(const std::string& entry);

  std::string dir_;
  std::string path_;
  std::FILE* file_ = nullptr;   ///< append handle (null until first append)
  int64_t good_size_ = 0;       ///< file size through the last valid entry
  bool tail_dirty_ = false;     ///< a failed append may have left torn bytes
  std::map<std::string, ManifestRecord> live_;
  int64_t replayed_records_ = 0;
  int64_t dropped_tail_bytes_ = 0;
};

}  // namespace serve
}  // namespace nfacount

#endif  // NFACOUNT_SERVE_MANIFEST_HPP_
