#include "util/metrics.hpp"

namespace nfacount {

namespace {

/// floor(log2(us)) clamped into [0, kBuckets): the bucket index.
int BucketIndex(int64_t micros) {
  if (micros < 1) return 0;
  int idx = 0;
  uint64_t v = static_cast<uint64_t>(micros);
  while (v >>= 1) ++idx;
  if (idx >= LatencyHistogram::kBuckets) idx = LatencyHistogram::kBuckets - 1;
  return idx;
}

}  // namespace

void LatencyHistogram::Record(int64_t micros) {
  buckets_[static_cast<size_t>(BucketIndex(micros))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

int64_t LatencyHistogram::PercentileMicros(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once; the total is the snapshot's own sum so a
  // concurrent Record between reading count_ and the buckets cannot push the
  // rank past the last sample.
  std::array<int64_t, kBuckets> snap;
  int64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<size_t>(i)];
  }
  if (total == 0) return 0;
  // 1-based rank of the quantile sample; walk buckets until it is covered.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(total - 1)) + 1;
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<size_t>(i)];
    if (seen >= rank) {
      return i >= 62 ? INT64_MAX : (int64_t{1} << (i + 1));
    }
  }
  return int64_t{1} << kBuckets;
}

void LatencyHistogram::RenderInto(JsonObject* out) const {
  out->Set("count", count());
  out->Set("p50_us", PercentileMicros(0.50));
  out->Set("p90_us", PercentileMicros(0.90));
  out->Set("p99_us", PercentileMicros(0.99));
  out->Set("max_us", PercentileMicros(1.0));
}

}  // namespace nfacount
