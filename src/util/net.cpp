#include "util/net.hpp"

#ifdef _WIN32

namespace nfacount {

void SocketFd::Close() { fd_.store(-1); }
void SocketFd::ShutdownBoth() {}
void SocketFd::ShutdownWrite() {}

Result<SocketFd> ListenLoopback(uint16_t, uint16_t*) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Result<SocketFd> AcceptConnection(const SocketFd&) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Result<SocketFd> ConnectLoopback(uint16_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status SetReadTimeout(const SocketFd&, int) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status ReadFull(const SocketFd&, void*, size_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status WriteFull(const SocketFd&, const void*, size_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status SetNonBlocking(const SocketFd&, bool) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status TryAccept(const SocketFd&, SocketFd*) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status ReadSome(const SocketFd&, void*, size_t, size_t*) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status WriteSome(const SocketFd&, const void*, size_t, size_t*) {
  return Status::Unimplemented("net: POSIX sockets only");
}

Poller::Poller() = default;
Poller::~Poller() = default;
bool Poller::valid() const { return false; }
Status Poller::Add(int, uint32_t, uint64_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status Poller::Modify(int, uint32_t, uint64_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status Poller::Remove(int) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Result<size_t> Poller::Wait(std::vector<Event>*, size_t, int) {
  return Status::Unimplemented("net: POSIX sockets only");
}

WakePipe::WakePipe() = default;
WakePipe::~WakePipe() = default;
bool WakePipe::valid() const { return false; }
int WakePipe::fd() const { return -1; }
void WakePipe::Signal() {}
void WakePipe::Drain() {}

}  // namespace nfacount

#else  // POSIX

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#if defined(__linux__) && !defined(NFACOUNT_FORCE_POLL)
#include <sys/epoll.h>
#include <sys/eventfd.h>
#define NFACOUNT_NET_EPOLL 1
#endif

namespace nfacount {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void SocketFd::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void SocketFd::ShutdownBoth() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void SocketFd::ShutdownWrite() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_WR);
}

Result<SocketFd> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Invalid(ErrnoMessage("net: socket"));
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Invalid(ErrnoMessage("net: bind"));
  }
  if (::listen(sock.fd(), 64) != 0) {
    return Status::Invalid(ErrnoMessage("net: listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Status::Invalid(ErrnoMessage("net: getsockname"));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<SocketFd> AcceptConnection(const SocketFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return SocketFd(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL: the listener was closed or shut down underneath us —
    // the daemon's orderly stop path, not an error worth a loud status.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("net: listener closed");
    }
    return Status::Invalid(ErrnoMessage("net: accept"));
  }
}

Result<SocketFd> ConnectLoopback(uint16_t port) {
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Invalid(ErrnoMessage("net: socket"));
  }
  sockaddr_in addr = LoopbackAddr(port);
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(ErrnoMessage("net: connect"));
  }
}

Status SetReadTimeout(const SocketFd& sock, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Invalid(ErrnoMessage("net: SO_RCVTIMEO"));
  }
  return Status::Ok();
}

Status ReadFull(const SocketFd& sock, void* out, size_t size) {
  char* dst = static_cast<char*>(out);
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(sock.fd(), dst + done, size - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      // Peer closed. Before the first byte of a frame this is the normal
      // end of a connection; mid-buffer it is a truncated frame.
      if (done == 0) return Status::NotFound("net: end of stream");
      return Status::DataLoss("net: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("net: read timed out");
    }
    return Status::DataLoss(ErrnoMessage("net: recv"));
  }
  return Status::Ok();
}

Status WriteFull(const SocketFd& sock, const void* data, size_t size) {
  const char* src = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t put =
        ::send(sock.fd(), src + done, size - done, MSG_NOSIGNAL);
    if (put >= 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(ErrnoMessage("net: send"));
  }
  return Status::Ok();
}

Status SetNonBlocking(const SocketFd& sock, bool nonblocking) {
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags < 0) return Status::Invalid(ErrnoMessage("net: F_GETFL"));
  const int next = nonblocking ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(sock.fd(), F_SETFL, next) != 0) {
    return Status::Invalid(ErrnoMessage("net: F_SETFL"));
  }
  return Status::Ok();
}

Status TryAccept(const SocketFd& listener, SocketFd* out) {
  *out = SocketFd();
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      *out = SocketFd(fd);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    // ECONNABORTED: the peer gave up while queued in the backlog — not an
    // error for the listener; report "nothing to accept" and move on.
    if (errno == ECONNABORTED) return Status::Ok();
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("net: listener closed");
    }
    return Status::Invalid(ErrnoMessage("net: accept"));
  }
}

Status ReadSome(const SocketFd& sock, void* out, size_t size, size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t got = ::recv(sock.fd(), out, size, 0);
    if (got > 0) {
      *n = static_cast<size_t>(got);
      return Status::Ok();
    }
    if (got == 0) return Status::NotFound("net: end of stream");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::DataLoss(ErrnoMessage("net: recv"));
  }
}

Status WriteSome(const SocketFd& sock, const void* data, size_t size,
                 size_t* n) {
  *n = 0;
  for (;;) {
    const ssize_t put = ::send(sock.fd(), data, size, MSG_NOSIGNAL);
    if (put >= 0) {
      *n = static_cast<size_t>(put);
      return Status::Ok();
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    return Status::Unavailable(ErrnoMessage("net: send"));
  }
}

#ifdef NFACOUNT_NET_EPOLL

Poller::Poller() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

bool Poller::valid() const { return epoll_fd_ >= 0; }

namespace {

uint32_t ToEpollMask(uint32_t events) {
  uint32_t mask = 0;
  if (events & Poller::kReadable) mask |= EPOLLIN;
  if (events & Poller::kWritable) mask |= EPOLLOUT;
  return mask;
}

uint32_t FromEpollMask(uint32_t mask) {
  uint32_t events = 0;
  if (mask & (EPOLLIN | EPOLLRDHUP)) events |= Poller::kReadable;
  if (mask & EPOLLOUT) events |= Poller::kWritable;
  if (mask & (EPOLLERR | EPOLLHUP)) {
    // Error/hangup must be observed via a read even when the owner only
    // asked for writability, or a dead connection spins forever.
    events |= Poller::kError | Poller::kReadable;
  }
  return events;
}

}  // namespace

Status Poller::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return Status::Invalid(ErrnoMessage("net: epoll_ctl add"));
  }
  return Status::Ok();
}

Status Poller::Modify(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = ToEpollMask(events);
  ev.data.u64 = tag;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) != 0) {
    return Status::Invalid(ErrnoMessage("net: epoll_ctl mod"));
  }
  return Status::Ok();
}

Status Poller::Remove(int fd) {
  epoll_event ev{};  // ignored but required pre-2.6.9
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, &ev) != 0) {
    return Status::Invalid(ErrnoMessage("net: epoll_ctl del"));
  }
  return Status::Ok();
}

Result<size_t> Poller::Wait(std::vector<Event>* out, size_t max_events,
                            int timeout_ms) {
  out->clear();
  if (max_events == 0) return size_t{0};
  scratch_.resize(max_events * sizeof(epoll_event));
  epoll_event* evs = reinterpret_cast<epoll_event*>(scratch_.data());
  for (;;) {
    const int got =
        ::epoll_wait(epoll_fd_, evs, static_cast<int>(max_events), timeout_ms);
    if (got >= 0) {
      out->reserve(static_cast<size_t>(got));
      for (int i = 0; i < got; ++i) {
        Event e;
        e.tag = evs[i].data.u64;
        e.events = FromEpollMask(evs[i].events);
        out->push_back(e);
      }
      return static_cast<size_t>(got);
    }
    if (errno == EINTR) continue;
    return Status::Invalid(ErrnoMessage("net: epoll_wait"));
  }
}

WakePipe::WakePipe() {
  const int fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  read_fd_ = fd;
  write_fd_ = fd;
}

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) ::close(read_fd_);
}

bool WakePipe::valid() const { return read_fd_ >= 0; }
int WakePipe::fd() const { return read_fd_; }

void WakePipe::Signal() {
  const uint64_t one = 1;
  // EAGAIN means the counter is saturated — a wakeup is already pending.
  (void)!::write(write_fd_, &one, sizeof(one));
}

void WakePipe::Drain() {
  uint64_t count = 0;
  (void)!::read(read_fd_, &count, sizeof(count));
}

#else  // poll(2) fallback

Poller::Poller() = default;
Poller::~Poller() = default;
bool Poller::valid() const { return true; }

Status Poller::Add(int fd, uint32_t events, uint64_t tag) {
  for (const Entry& e : entries_) {
    if (e.fd == fd) return Status::Invalid("net: poller fd already added");
  }
  entries_.push_back(Entry{fd, events, tag});
  return Status::Ok();
}

Status Poller::Modify(int fd, uint32_t events, uint64_t tag) {
  for (Entry& e : entries_) {
    if (e.fd == fd) {
      e.events = events;
      e.tag = tag;
      return Status::Ok();
    }
  }
  return Status::Invalid("net: poller fd not registered");
}

Status Poller::Remove(int fd) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].fd == fd) {
      entries_[i] = entries_.back();
      entries_.pop_back();
      return Status::Ok();
    }
  }
  return Status::Invalid("net: poller fd not registered");
}

Result<size_t> Poller::Wait(std::vector<Event>* out, size_t max_events,
                            int timeout_ms) {
  out->clear();
  if (max_events == 0) return size_t{0};
  scratch_.resize(entries_.size() * sizeof(pollfd));
  pollfd* fds = reinterpret_cast<pollfd*>(scratch_.data());
  for (size_t i = 0; i < entries_.size(); ++i) {
    fds[i].fd = entries_[i].fd;
    fds[i].events = 0;
    if (entries_[i].events & kReadable) fds[i].events |= POLLIN;
    if (entries_[i].events & kWritable) fds[i].events |= POLLOUT;
    fds[i].revents = 0;
  }
  for (;;) {
    const int got =
        ::poll(fds, static_cast<nfds_t>(entries_.size()), timeout_ms);
    if (got >= 0) {
      for (size_t i = 0; i < entries_.size() && out->size() < max_events;
           ++i) {
        if (fds[i].revents == 0) continue;
        Event e;
        e.tag = entries_[i].tag;
        if (fds[i].revents & POLLIN) e.events |= kReadable;
        if (fds[i].revents & POLLOUT) e.events |= kWritable;
        if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
          e.events |= kError | kReadable;
        }
        out->push_back(e);
      }
      return out->size();
    }
    if (errno == EINTR) continue;
    return Status::Invalid(ErrnoMessage("net: poll"));
  }
}

WakePipe::WakePipe() {
  int fds[2] = {-1, -1};
  if (::pipe(fds) == 0) {
    ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
    read_fd_ = fds[0];
    write_fd_ = fds[1];
  }
}

WakePipe::~WakePipe() {
  if (read_fd_ >= 0) ::close(read_fd_);
  if (write_fd_ >= 0 && write_fd_ != read_fd_) ::close(write_fd_);
}

bool WakePipe::valid() const { return read_fd_ >= 0 && write_fd_ >= 0; }
int WakePipe::fd() const { return read_fd_; }

void WakePipe::Signal() {
  const char one = 1;
  // EAGAIN (pipe full) means a wakeup is already pending; that is enough.
  (void)!::write(write_fd_, &one, 1);
}

void WakePipe::Drain() {
  char buf[256];
  while (::read(read_fd_, buf, sizeof(buf)) > 0) {
  }
}

#endif  // NFACOUNT_NET_EPOLL

}  // namespace nfacount

#endif  // _WIN32
