#include "util/net.hpp"

#ifdef _WIN32

namespace nfacount {

void SocketFd::Close() { fd_.store(-1); }
void SocketFd::ShutdownBoth() {}

Result<SocketFd> ListenLoopback(uint16_t, uint16_t*) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Result<SocketFd> AcceptConnection(const SocketFd&) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Result<SocketFd> ConnectLoopback(uint16_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status SetReadTimeout(const SocketFd&, int) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status ReadFull(const SocketFd&, void*, size_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}
Status WriteFull(const SocketFd&, const void*, size_t) {
  return Status::Unimplemented("net: POSIX sockets only");
}

}  // namespace nfacount

#else  // POSIX

#include <arpa/inet.h>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace nfacount {

namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  return addr;
}

}  // namespace

void SocketFd::Close() {
  const int fd = fd_.exchange(-1);
  if (fd >= 0) ::close(fd);
}

void SocketFd::ShutdownBoth() {
  const int fd = fd_.load();
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

Result<SocketFd> ListenLoopback(uint16_t port, uint16_t* bound_port) {
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Invalid(ErrnoMessage("net: socket"));
  }
  int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (::bind(sock.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Invalid(ErrnoMessage("net: bind"));
  }
  if (::listen(sock.fd(), 64) != 0) {
    return Status::Invalid(ErrnoMessage("net: listen"));
  }
  if (bound_port != nullptr) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      return Status::Invalid(ErrnoMessage("net: getsockname"));
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Result<SocketFd> AcceptConnection(const SocketFd& listener) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) return SocketFd(fd);
    if (errno == EINTR) continue;
    // EBADF/EINVAL: the listener was closed or shut down underneath us —
    // the daemon's orderly stop path, not an error worth a loud status.
    if (errno == EBADF || errno == EINVAL) {
      return Status::Unavailable("net: listener closed");
    }
    return Status::Invalid(ErrnoMessage("net: accept"));
  }
}

Result<SocketFd> ConnectLoopback(uint16_t port) {
  SocketFd sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    return Status::Invalid(ErrnoMessage("net: socket"));
  }
  sockaddr_in addr = LoopbackAddr(port);
  for (;;) {
    if (::connect(sock.fd(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return sock;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(ErrnoMessage("net: connect"));
  }
}

Status SetReadTimeout(const SocketFd& sock, int millis) {
  timeval tv{};
  tv.tv_sec = millis / 1000;
  tv.tv_usec = (millis % 1000) * 1000;
  if (::setsockopt(sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::Invalid(ErrnoMessage("net: SO_RCVTIMEO"));
  }
  return Status::Ok();
}

Status ReadFull(const SocketFd& sock, void* out, size_t size) {
  char* dst = static_cast<char*>(out);
  size_t done = 0;
  while (done < size) {
    const ssize_t got = ::recv(sock.fd(), dst + done, size - done, 0);
    if (got > 0) {
      done += static_cast<size_t>(got);
      continue;
    }
    if (got == 0) {
      // Peer closed. Before the first byte of a frame this is the normal
      // end of a connection; mid-buffer it is a truncated frame.
      if (done == 0) return Status::NotFound("net: end of stream");
      return Status::DataLoss("net: connection closed mid-frame");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("net: read timed out");
    }
    return Status::DataLoss(ErrnoMessage("net: recv"));
  }
  return Status::Ok();
}

Status WriteFull(const SocketFd& sock, const void* data, size_t size) {
  const char* src = static_cast<const char*>(data);
  size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not kill the daemon with SIGPIPE.
    const ssize_t put =
        ::send(sock.fd(), src + done, size - done, MSG_NOSIGNAL);
    if (put >= 0) {
      done += static_cast<size_t>(put);
      continue;
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(ErrnoMessage("net: send"));
  }
  return Status::Ok();
}

}  // namespace nfacount

#endif  // _WIN32
