// Arbitrary-precision unsigned integers for exact #NFA counts: |L(A_n)| can
// reach |Σ|^n, which overflows machine words long before the benchmark sizes
// of interest. Only the operations the exact counters need are provided.

#ifndef NFACOUNT_UTIL_BIGINT_HPP_
#define NFACOUNT_UTIL_BIGINT_HPP_

#include <cstdint>
#include <string>
#include <vector>

namespace nfacount {

/// Arbitrary-precision natural number, little-endian base-2^32 limbs,
/// normalized (no trailing zero limbs; zero == empty limb vector).
class BigUint {
 public:
  BigUint() = default;
  /// From a machine word.
  explicit BigUint(uint64_t value);

  /// 2^k.
  static BigUint Pow2(uint32_t k);
  /// base^exp by square-and-multiply (base is a machine word).
  static BigUint Pow(uint64_t base, uint32_t exp);
  /// Parses a non-empty decimal string of digits. Asserts on bad input.
  static BigUint FromDecimal(const std::string& digits);

  bool IsZero() const { return limbs_.empty(); }

  BigUint& operator+=(const BigUint& other);
  BigUint operator+(const BigUint& other) const;

  /// Subtraction; requires *this >= other (asserted).
  BigUint& operator-=(const BigUint& other);
  BigUint operator-(const BigUint& other) const;

  /// Full school multiplication.
  BigUint operator*(const BigUint& other) const;
  /// In-place multiply by a machine word.
  BigUint& MulSmall(uint64_t factor);

  /// Divides in place by a small divisor (> 0), returning the remainder.
  uint32_t DivSmall(uint32_t divisor);

  /// -1, 0, +1 comparison.
  int Compare(const BigUint& other) const;
  bool operator==(const BigUint& o) const { return Compare(o) == 0; }
  bool operator!=(const BigUint& o) const { return Compare(o) != 0; }
  bool operator<(const BigUint& o) const { return Compare(o) < 0; }
  bool operator<=(const BigUint& o) const { return Compare(o) <= 0; }
  bool operator>(const BigUint& o) const { return Compare(o) > 0; }
  bool operator>=(const BigUint& o) const { return Compare(o) >= 0; }

  /// Nearest double (inf if it overflows the double range).
  double ToDouble() const;

  /// Value as uint64 if it fits, asserting otherwise.
  uint64_t ToU64() const;
  /// True if the value fits in 64 bits.
  bool FitsU64() const { return limbs_.size() <= 2; }

  /// Decimal rendering.
  std::string ToString() const;

  /// Number of significant bits (0 for zero).
  size_t BitLength() const;

 private:
  void Normalize();
  std::vector<uint32_t> limbs_;
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_BIGINT_HPP_
