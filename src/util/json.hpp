// Minimal JSON rendering for machine-readable outputs: bench trajectory
// files (BENCH_*.json via bench/bench_common.hpp) and the CLI's --json
// reports (examples/nfa_cli.cpp). Write-only by design — the library never
// parses JSON — and dependency-free so any layer can emit a report.

#ifndef NFACOUNT_UTIL_JSON_HPP_
#define NFACOUNT_UTIL_JSON_HPP_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace nfacount {

/// Ordered key → value list rendered as one JSON object. Insertion order is
/// preserved so reruns diff cleanly. Values are pre-rendered; use the typed
/// Set overloads (strings are escaped, doubles round-trip via %.17g).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, const std::string& value) {
    return SetRaw(key, Quote(value));
  }
  JsonObject& Set(const std::string& key, const char* value) {
    return SetRaw(key, Quote(value));
  }
  JsonObject& Set(const std::string& key, double value) {
    // JSON has no inf/nan literals; a sub-resolution timer can produce an
    // infinite ratio — emit null so the file stays parseable.
    if (!std::isfinite(value)) return SetRaw(key, "null");
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return SetRaw(key, buf);
  }
  JsonObject& Set(const std::string& key, int64_t value) {
    return SetRaw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, int value) {
    return SetRaw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, uint64_t value) {
    return SetRaw(key, std::to_string(value));
  }
  JsonObject& Set(const std::string& key, bool value) {
    return SetRaw(key, value ? "true" : "false");
  }
  /// Inserts an already-rendered JSON value (nested object/array).
  JsonObject& SetRaw(const std::string& key, std::string rendered) {
    fields_.emplace_back(key, std::move(rendered));
    return *this;
  }

  bool empty() const { return fields_.empty(); }

  std::string Render() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ",";
      out += Quote(fields_[i].first) + ":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

  /// Renders `s` as a JSON string literal (escapes quotes and controls).
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += "\"";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_JSON_HPP_
