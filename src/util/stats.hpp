// Statistics helpers used by statistical tests (sampler uniformity, FPRAS
// accuracy census) and by the benchmark harness tables.

#ifndef NFACOUNT_UTIL_STATS_HPP_
#define NFACOUNT_UTIL_STATS_HPP_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace nfacount {

/// Welford online accumulator for mean/variance plus min/max.
class RunningStat {
 public:
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Unbiased sample variance (0 for fewer than two observations).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// q-th quantile (q in [0,1]) by linear interpolation; input is copied and
/// sorted. Returns 0 for empty input.
double Quantile(std::vector<double> values, double q);

/// Relative error |estimate - truth| / truth; truth must be nonzero, except
/// that (0, 0) yields 0 and (x != 0, 0) yields +inf.
double RelativeError(double estimate, double truth);

/// Total variation distance between an empirical histogram (counts over
/// outcomes) and the uniform distribution over `support_size` outcomes.
/// Outcomes present in the histogram but conceptually outside the support
/// contribute their full mass. `total` is the number of trials.
double EmpiricalTvToUniform(const std::map<std::string, int64_t>& histogram,
                            int64_t total, int64_t support_size);

/// Total variation distance between two empirical distributions given as
/// histograms (they are normalized by their own totals).
double EmpiricalTv(const std::map<std::string, int64_t>& a,
                   const std::map<std::string, int64_t>& b);

/// Pearson chi-square statistic of a histogram against the uniform law over
/// `support_size` outcomes (missing outcomes count as zero cells).
double ChiSquareUniform(const std::map<std::string, int64_t>& histogram,
                        int64_t total, int64_t support_size);

/// Two-sided Chernoff-Hoeffding sample bound: number of i.i.d. [0,1] samples
/// so the empirical mean is within `eps` of the truth w.p. >= 1 - delta.
int64_t HoeffdingSamples(double eps, double delta);

/// Least-squares slope of log(y) against log(x) — empirical polynomial degree
/// of a scaling curve. Requires equal-sized positive vectors, size >= 2.
double LogLogSlope(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_STATS_HPP_
