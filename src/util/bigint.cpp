#include "util/bigint.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace nfacount {

BigUint::BigUint(uint64_t value) {
  if (value != 0) {
    limbs_.push_back(static_cast<uint32_t>(value));
    uint32_t hi = static_cast<uint32_t>(value >> 32);
    if (hi != 0) limbs_.push_back(hi);
  }
}

BigUint BigUint::Pow2(uint32_t k) {
  BigUint out;
  out.limbs_.assign(k / 32 + 1, 0);
  out.limbs_.back() = 1u << (k % 32);
  return out;
}

BigUint BigUint::Pow(uint64_t base, uint32_t exp) {
  BigUint result(1);
  BigUint b(base);
  while (exp > 0) {
    if (exp & 1) result = result * b;
    b = b * b;
    exp >>= 1;
  }
  return result;
}

BigUint BigUint::FromDecimal(const std::string& digits) {
  assert(!digits.empty());
  BigUint out;
  for (char c : digits) {
    assert(c >= '0' && c <= '9');
    out.MulSmall(10);
    out += BigUint(static_cast<uint64_t>(c - '0'));
  }
  return out;
}

void BigUint::Normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint& BigUint::operator+=(const BigUint& other) {
  size_t n = std::max(limbs_.size(), other.limbs_.size());
  limbs_.resize(n, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry + limbs_[i] +
                   (i < other.limbs_.size() ? other.limbs_[i] : 0u);
    limbs_[i] = static_cast<uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry != 0) limbs_.push_back(static_cast<uint32_t>(carry));
  return *this;
}

BigUint BigUint::operator+(const BigUint& other) const {
  BigUint out = *this;
  out += other;
  return out;
}

BigUint& BigUint::operator-=(const BigUint& other) {
  assert(*this >= other && "BigUint subtraction would underflow");
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < other.limbs_.size() ? other.limbs_[i] : 0u);
    if (diff < 0) {
      diff += (1LL << 32);
      borrow = 1;
    } else {
      borrow = 0;
    }
    limbs_[i] = static_cast<uint32_t>(diff);
  }
  assert(borrow == 0);
  Normalize();
  return *this;
}

BigUint BigUint::operator-(const BigUint& other) const {
  BigUint out = *this;
  out -= other;
  return out;
}

BigUint BigUint::operator*(const BigUint& other) const {
  if (IsZero() || other.IsZero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + other.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < other.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] +
                     static_cast<uint64_t>(limbs_[i]) * other.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + other.limbs_.size();
    while (carry != 0) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.Normalize();
  return out;
}

BigUint& BigUint::MulSmall(uint64_t factor) {
  if (factor == 0 || IsZero()) {
    limbs_.clear();
    return *this;
  }
  uint32_t f_lo = static_cast<uint32_t>(factor);
  uint32_t f_hi = static_cast<uint32_t>(factor >> 32);
  if (f_hi == 0) {
    uint64_t carry = 0;
    for (uint32_t& limb : limbs_) {
      uint64_t cur = static_cast<uint64_t>(limb) * f_lo + carry;
      limb = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    while (carry != 0) {
      limbs_.push_back(static_cast<uint32_t>(carry));
      carry >>= 32;
    }
  } else {
    *this = *this * BigUint(factor);
  }
  return *this;
}

uint32_t BigUint::DivSmall(uint32_t divisor) {
  assert(divisor > 0);
  uint64_t rem = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | limbs_[i];
    limbs_[i] = static_cast<uint32_t>(cur / divisor);
    rem = cur % divisor;
  }
  Normalize();
  return static_cast<uint32_t>(rem);
}

int BigUint::Compare(const BigUint& other) const {
  if (limbs_.size() != other.limbs_.size()) {
    return limbs_.size() < other.limbs_.size() ? -1 : 1;
  }
  for (size_t i = limbs_.size(); i-- > 0;) {
    if (limbs_[i] != other.limbs_[i]) return limbs_[i] < other.limbs_[i] ? -1 : 1;
  }
  return 0;
}

double BigUint::ToDouble() const {
  double out = 0.0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    out = out * 4294967296.0 + static_cast<double>(limbs_[i]);
  }
  return out;
}

uint64_t BigUint::ToU64() const {
  assert(FitsU64());
  uint64_t out = 0;
  if (limbs_.size() > 1) out = static_cast<uint64_t>(limbs_[1]) << 32;
  if (!limbs_.empty()) out |= limbs_[0];
  return out;
}

std::string BigUint::ToString() const {
  if (IsZero()) return "0";
  BigUint tmp = *this;
  std::string out;
  while (!tmp.IsZero()) {
    uint32_t rem = tmp.DivSmall(1000000000u);
    if (tmp.IsZero()) {
      out = std::to_string(rem) + out;
    } else {
      std::string chunk = std::to_string(rem);
      out = std::string(9 - chunk.size(), '0') + chunk + out;
    }
  }
  return out;
}

size_t BigUint::BitLength() const {
  if (IsZero()) return 0;
  uint32_t top = limbs_.back();
  return (limbs_.size() - 1) * 32 + (32 - __builtin_clz(top));
}

}  // namespace nfacount
