// Fixed-size worker pool for the level-sweep executor (fpras/estimator.cpp):
// batches of independent items are fanned out over a stable set of threads
// and joined with a level barrier. The pool is deliberately minimal — one
// batch in flight at a time, dynamic (work-stealing-free) item claiming via a
// shared atomic cursor, and exception-to-Status propagation so the library's
// no-throw error model survives crossing thread boundaries.
//
// Worker identity: every item callback receives a worker index in
// [0, num_threads). Index num_threads-1 is the calling thread (it participates
// in the batch instead of idling), indices 0..num_threads-2 are pool threads.
// Callers key per-thread scratch off this index; which *items* land on which
// worker is scheduling-dependent, so correctness (and, in the FPRAS, RNG
// determinism) must never depend on the item→worker mapping — only on the
// item identity itself (see Rng::ForSubstream).

#ifndef NFACOUNT_UTIL_THREAD_POOL_HPP_
#define NFACOUNT_UTIL_THREAD_POOL_HPP_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/status.hpp"

namespace nfacount {

/// Fixed-size thread pool executing one ParallelFor batch at a time.
class ThreadPool {
 public:
  /// The per-item callback: fn(item, worker). `item` is the batch index in
  /// [0, count), `worker` the stable thread slot in [0, num_threads()).
  using ItemFn = std::function<Status(int64_t item, int worker)>;

  /// Creates num_threads-1 pool threads (the caller is the final worker).
  /// num_threads <= 1 creates no threads: ParallelFor runs inline.
  explicit ThreadPool(int num_threads);

  /// Joins all pool threads. No batch may be in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Resolves a user-facing thread-count knob: values >= 1 pass through,
  /// 0 (or negative) means "all hardware threads" with a floor of 1.
  static int ResolveThreadCount(int requested);

  /// Runs fn(i, worker) for every i in [0, count), blocking until all items
  /// finish. The first non-OK Status — or any exception, converted to
  /// Status::Internal — cancels the items not yet started and is returned;
  /// items already running always complete. Not reentrant: one batch at a
  /// time, and fn must not call ParallelFor on the same pool.
  Status ParallelFor(int64_t count, const ItemFn& fn);

 private:
  void WorkerLoop(int worker);
  /// Claims and executes items until the batch cursor is exhausted.
  void DrainBatch(int worker);
  void RecordError(Status status);

  const int num_threads_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable batch_ready_;
  std::condition_variable batch_done_;
  bool stop_ = false;
  uint64_t generation_ = 0;  // bumped once per ParallelFor batch
  int active_ = 0;           // pool workers currently inside DrainBatch

  // State of the in-flight batch. Written only while no worker is draining
  // (ParallelFor waits for active_ == 0 before returning, so the next
  // batch's setup can never race a laggard reader).
  const ItemFn* fn_ = nullptr;
  int64_t count_ = 0;
  std::atomic<int64_t> next_{0};       // item claim cursor
  std::atomic<int64_t> completed_{0};  // items finished (or skipped)
  std::atomic<bool> failed_{false};    // set with first_error_ under mu_
  Status first_error_;
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_THREAD_POOL_HPP_
