// Deterministic pseudo-random number generation for all randomized algorithms
// in the library. Every randomized entry point takes an explicit Rng so runs
// are reproducible from a single seed; Split() derives statistically
// independent child streams for subcomputations.

#ifndef NFACOUNT_UTIL_RNG_HPP_
#define NFACOUNT_UTIL_RNG_HPP_

#include <cstdint>
#include <vector>

namespace nfacount {

/// SplitMix64: seeding / stream-derivation generator (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless 64→64 bit finalizer (the SplitMix64 output stage). Used to
/// derive counter-based substream keys: statistically independent outputs for
/// distinct inputs, bit-identical on every platform.
uint64_t Mix64(uint64_t z);

/// Folds `v` into the running substream key `h` (Mix64 over an injective-ish
/// combination). Chain calls to key a stream by several coordinates.
uint64_t HashCombine(uint64_t h, uint64_t v);

/// xoshiro256** 1.0 (Blackman & Vigna) wrapped with the draw primitives the
/// counting/sampling algorithms need. Not cryptographic.
class Rng {
 public:
  /// Seeds the four-word state via SplitMix64 (any seed, including 0, is fine).
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Counter-based substream derivation: a generator keyed by (seed, a, b)
  /// only. Unlike Split() — which couples the child to the parent's current
  /// position — the substream for given coordinates is the same no matter
  /// when, where, or on which thread it is created. The FPRAS keys one
  /// stream per (state q, level ℓ) cell, which is what makes the parallel
  /// level sweep bit-identical for every thread count (including 1).
  static Rng ForSubstream(uint64_t seed, uint64_t a, uint64_t b);

  /// Raw 64 uniform bits.
  uint64_t NextU64();

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// `bound` must be > 0.
  uint64_t UniformU64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double UniformDouble();

  /// Bernoulli draw; p outside [0,1] is clamped.
  bool Bernoulli(double p);

  /// Index i drawn with probability weights[i] / sum(weights).
  /// Weights must be non-negative with a positive finite sum; returns -1 if
  /// the sum is not positive. O(k) per draw (k is small in all call sites).
  int DiscreteIndex(const std::vector<double>& weights);

  /// Derives an independent child generator (distinct stream).
  Rng Split();

  /// std::uniform_random_bit_generator interface (for std::shuffle etc.).
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~0ULL; }
  uint64_t operator()() { return NextU64(); }

 private:
  uint64_t s_[4];
};

/// Flat prefix-sum table over a fixed weight vector, for loops that draw many
/// indices from the same distribution (AppUnion's trial loop draws t ≫ k
/// times from k fixed size estimates). Draw() is O(log k) per draw against
/// DiscreteIndex's O(k) scan, consumes exactly one UniformDouble, and selects
/// the bit-identical index for the same generator state: the prefix sums
/// accumulate in DiscreteIndex's order, and the floating-point-slack fallback
/// scans the same retained weights. Rebuild() reuses the table's storage
/// across calls.
class DiscreteTable {
 public:
  DiscreteTable() = default;

  /// Recomputes the prefix sums for `weights` (non-negative).
  void Rebuild(const std::vector<double>& weights);

  /// True when the weights had a positive finite sum.
  bool valid() const { return total_ > 0.0; }

  /// Sum of the weights (0 before Rebuild).
  double total() const { return total_; }

  /// Index i drawn with probability weights[i] / total, or -1 when !valid().
  /// Identical selection to Rng::DiscreteIndex on the same weights and rng.
  int Draw(Rng& rng) const;

 private:
  std::vector<double> prefix_;
  std::vector<double> weights_;  // retained for the exact fallback scan
  double total_ = 0.0;
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_RNG_HPP_
