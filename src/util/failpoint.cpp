#include "util/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

namespace nfacount {
namespace failpoint {
namespace {

struct Arming {
  Action action = Action::kOff;
  int64_t arg = 0;
  int64_t remaining = -1;  // firings left before self-disarm; -1 = unlimited
  int64_t hits = 0;        // survives disarm so tests can assert fire counts
};

struct State {
  std::mutex mu;
  std::map<std::string, Arming> points;
  // Count of points whose action != kOff. Check() reads this without the
  // mutex so unarmed call sites cost one relaxed load.
  std::atomic<int64_t> armed{0};
};

State& state() {
  static State* s = new State();  // leaked: failpoints outlive static dtors
  return *s;
}

bool ParseSpec(const std::string& spec, Arming* out) {
  // Grammar: action[(arg)][:count] with action in {off, error, short-write}.
  std::string body = spec;
  int64_t count = -1;
  const size_t colon = body.rfind(':');
  if (colon != std::string::npos && body.find(')', colon) == std::string::npos) {
    const std::string count_text = body.substr(colon + 1);
    if (count_text.empty()) return false;
    char* end = nullptr;
    count = std::strtoll(count_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || count < 0) return false;
    body = body.substr(0, colon);
  }
  std::string action = body;
  int64_t arg = 0;
  const size_t paren = body.find('(');
  if (paren != std::string::npos) {
    if (body.empty() || body.back() != ')') return false;
    const std::string arg_text = body.substr(paren + 1, body.size() - paren - 2);
    if (arg_text.empty()) return false;
    char* end = nullptr;
    arg = std::strtoll(arg_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || arg < 0) return false;
    action = body.substr(0, paren);
  }
  if (action == "off") {
    out->action = Action::kOff;
  } else if (action == "error") {
    out->action = Action::kError;
  } else if (action == "short-write") {
    out->action = Action::kShortWrite;
  } else {
    return false;
  }
  out->arg = arg;
  out->remaining = count;
  return true;
}

// Folds NFACOUNT_FAILPOINTS into the registry exactly once per process,
// before the first Set/Check/Clear takes effect. Malformed env entries are
// ignored (a daemon must not fail to start over a typo'd chaos schedule);
// tests exercising the parser go through Set, which does report errors.
void LoadEnvOnce() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* env = std::getenv("NFACOUNT_FAILPOINTS");
    if (env == nullptr) return;
    State& s = state();
    std::string text(env);
    size_t pos = 0;
    while (pos <= text.size()) {
      size_t end = text.find_first_of(",;", pos);
      if (end == std::string::npos) end = text.size();
      const std::string item = text.substr(pos, end - pos);
      pos = end + 1;
      if (item.empty()) continue;
      const size_t eq = item.find('=');
      if (eq == std::string::npos || eq == 0) continue;
      Arming arming;
      if (!ParseSpec(item.substr(eq + 1), &arming)) continue;
      std::lock_guard<std::mutex> lock(s.mu);
      Arming& slot = s.points[item.substr(0, eq)];
      if (slot.action != Action::kOff) s.armed.fetch_sub(1, std::memory_order_relaxed);
      const int64_t hits = slot.hits;
      slot = arming;
      slot.hits = hits;
      if (slot.action != Action::kOff) s.armed.fetch_add(1, std::memory_order_relaxed);
    }
  });
}

}  // namespace

Status Set(const std::string& name, const std::string& spec) {
  LoadEnvOnce();
  if (name.empty()) return Status::Invalid("failpoint name is empty");
  Arming arming;
  if (!ParseSpec(spec, &arming)) {
    return Status::Invalid("bad failpoint spec '" + spec + "' for '" +
                                   name + "' (want action[(arg)][:count])");
  }
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  Arming& slot = s.points[name];
  if (slot.action != Action::kOff) s.armed.fetch_sub(1, std::memory_order_relaxed);
  const int64_t hits = slot.hits;
  slot = arming;
  slot.hits = hits;
  if (slot.action != Action::kOff) s.armed.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void Clear(const std::string& name) {
  LoadEnvOnce();
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.points.find(name);
  if (it == s.points.end()) return;
  if (it->second.action != Action::kOff) {
    s.armed.fetch_sub(1, std::memory_order_relaxed);
  }
  it->second.action = Action::kOff;
}

void ClearAll() {
  LoadEnvOnce();
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& entry : s.points) {
    if (entry.second.action != Action::kOff) {
      s.armed.fetch_sub(1, std::memory_order_relaxed);
    }
    entry.second.action = Action::kOff;
  }
}

Eval Check(const char* name) {
  LoadEnvOnce();
  State& s = state();
  if (s.armed.load(std::memory_order_relaxed) == 0) return Eval{};
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.points.find(name);
  if (it == s.points.end() || it->second.action == Action::kOff) return Eval{};
  Arming& arming = it->second;
  Eval eval;
  eval.action = arming.action;
  eval.arg = arming.arg;
  arming.hits++;
  if (arming.remaining > 0 && --arming.remaining == 0) {
    arming.action = Action::kOff;
    s.armed.fetch_sub(1, std::memory_order_relaxed);
  }
  return eval;
}

int64_t Hits(const std::string& name) {
  LoadEnvOnce();
  State& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.points.find(name);
  return it == s.points.end() ? 0 : it->second.hits;
}

bool EnvScheduleActive() { return std::getenv("NFACOUNT_FAILPOINTS") != nullptr; }

}  // namespace failpoint
}  // namespace nfacount
