// Minimal wall-clock timer for diagnostics and benchmark tables.

#ifndef NFACOUNT_UTIL_TIMER_HPP_
#define NFACOUNT_UTIL_TIMER_HPP_

#include <chrono>

namespace nfacount {

/// Monotonic wall-clock stopwatch, started at construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_TIMER_HPP_
