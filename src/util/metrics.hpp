// Lock-free request metrics for the serve-mode daemon: a log2-bucketed
// latency histogram with percentile readout, and a per-operation counter
// block, both safe to update from any number of serving threads and to
// snapshot at any time (relaxed atomics — counts, not synchronization).
// Rendering goes through the existing JsonObject reporting.

#ifndef NFACOUNT_UTIL_METRICS_HPP_
#define NFACOUNT_UTIL_METRICS_HPP_

#include <array>
#include <atomic>
#include <cstdint>

#include "util/json.hpp"

namespace nfacount {

/// Latency histogram over power-of-two microsecond buckets: bucket i counts
/// samples with floor(log2(us)) == i (bucket 0 holds 0–1 µs, the last bucket
/// is open-ended at ~2.3 hours). Recording is one relaxed fetch_add — no
/// locks, no allocation — and percentile readout walks the 43 buckets,
/// reporting a bucket's upper bound (an at-most-2x overestimate, the usual
/// log-bucket tradeoff).
class LatencyHistogram {
 public:
  /// Number of power-of-two buckets (2^42 µs ≈ 51 days, effectively open).
  static constexpr int kBuckets = 43;

  /// Records one sample of `micros` microseconds (negative clamps to 0).
  void Record(int64_t micros);

  /// Samples recorded so far.
  int64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Upper bound in microseconds of the bucket containing the q-quantile
  /// (q in [0, 1]); 0 when the histogram is empty. A concurrent snapshot —
  /// samples recorded while reading may or may not be included.
  int64_t PercentileMicros(double q) const;

  /// Renders {"count", "p50_us", "p90_us", "p99_us", "max_us"} into `out`.
  void RenderInto(JsonObject* out) const;

 private:
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
};

/// One serve operation's counters: requests served, failures, service
/// latency, and — for the pooled runtime — how long decoded requests sat in
/// the worker queue before a worker picked them up. Queue wait is kept
/// separate from service latency so saturation (deep queues) is visible even
/// when per-request service time stays flat. Same concurrency contract as
/// LatencyHistogram.
struct OpMetrics {
  std::atomic<int64_t> requests{0};  ///< completed requests (ok + error)
  std::atomic<int64_t> errors{0};    ///< requests answered with an error
  LatencyHistogram latency;          ///< service time per request
  LatencyHistogram queue_wait;       ///< decode → worker-pickup wait

  /// Folds one completed request into the counters. `queue_wait_us` is the
  /// time the decoded request spent waiting for a worker (0 in the legacy
  /// thread-per-connection runtime, where there is no queue).
  void Record(bool ok, int64_t service_us, int64_t queue_wait_us = 0) {
    requests.fetch_add(1, std::memory_order_relaxed);
    if (!ok) errors.fetch_add(1, std::memory_order_relaxed);
    latency.Record(service_us);
    queue_wait.Record(queue_wait_us);
  }

  /// Renders {"requests", "errors", latency fields, "queue_wait": {...}}
  /// into `out`.
  void RenderInto(JsonObject* out) const {
    out->Set("requests", requests.load(std::memory_order_relaxed));
    out->Set("errors", errors.load(std::memory_order_relaxed));
    latency.RenderInto(out);
    JsonObject wait;
    queue_wait.RenderInto(&wait);
    out->SetRaw("queue_wait", wait.Render());
  }
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_METRICS_HPP_
