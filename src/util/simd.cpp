#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

// The AVX2 kernels are compiled with per-function target attributes so the
// whole library can stay on the baseline ISA: only these functions carry
// AVX2 instructions, and they are only ever called behind the runtime
// __builtin_cpu_supports check.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NFACOUNT_HAVE_AVX2_KERNELS 1
#include <immintrin.h>
#else
#define NFACOUNT_HAVE_AVX2_KERNELS 0
#endif

namespace nfacount {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels
// ---------------------------------------------------------------------------

void OrScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i];
}

void AndScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= src[i];
}

void AndNotScalar(uint64_t* dst, const uint64_t* src, size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] &= ~src[i];
}

void OrMaskedScalar(uint64_t* dst, const uint64_t* src, const uint64_t* mask,
                    size_t n) {
  for (size_t i = 0; i < n; ++i) dst[i] |= src[i] & mask[i];
}

bool IntersectsScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

size_t PopcountScalar(const uint64_t* w, size_t n) {
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += static_cast<size_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

constexpr BitsetKernels kScalar = {
    "scalar",      OrScalar,         AndScalar, AndNotScalar,
    OrMaskedScalar, IntersectsScalar, PopcountScalar,
};

// ---------------------------------------------------------------------------
// AVX2 kernels (bit-identical results; 4 words per vector, scalar tail)
// ---------------------------------------------------------------------------

#if NFACOUNT_HAVE_AVX2_KERNELS

__attribute__((target("avx2"))) void OrAvx2(uint64_t* dst, const uint64_t* src,
                                            size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_or_si256(d, s));
  }
  for (; i < n; ++i) dst[i] |= src[i];
}

__attribute__((target("avx2"))) void AndAvx2(uint64_t* dst,
                                             const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(d, s));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

__attribute__((target("avx2"))) void AndNotAvx2(uint64_t* dst,
                                                const uint64_t* src, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    // _mm256_andnot_si256(a, b) = ~a & b, so pass src first.
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_andnot_si256(s, d));
  }
  for (; i < n; ++i) dst[i] &= ~src[i];
}

__attribute__((target("avx2"))) void OrMaskedAvx2(uint64_t* dst,
                                                  const uint64_t* src,
                                                  const uint64_t* mask,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i d = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    __m256i s = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    __m256i m = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mask + i));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + i),
        _mm256_or_si256(d, _mm256_and_si256(s, m)));
  }
  for (; i < n; ++i) dst[i] |= src[i] & mask[i];
}

__attribute__((target("avx2"))) bool IntersectsAvx2(const uint64_t* a,
                                                    const uint64_t* b,
                                                    size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    if (!_mm256_testz_si256(va, vb)) return true;
  }
  for (; i < n; ++i) {
    if (a[i] & b[i]) return true;
  }
  return false;
}

__attribute__((target("avx2"))) size_t PopcountAvx2(const uint64_t* w,
                                                    size_t n) {
  // Nibble-LUT popcount (Muła): per-byte counts via pshufb, folded into
  // 64-bit lanes with psadbw. Exact, so identical to the scalar kernel.
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, zero));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  size_t total = static_cast<size_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    total += static_cast<size_t>(__builtin_popcountll(w[i]));
  }
  return total;
}

constexpr BitsetKernels kAvx2 = {
    "avx2",       OrAvx2,         AndAvx2, AndNotAvx2,
    OrMaskedAvx2, IntersectsAvx2, PopcountAvx2,
};

#endif  // NFACOUNT_HAVE_AVX2_KERNELS

bool ForcedScalarByEnv() {
  const char* env = std::getenv("NFACOUNT_FORCE_SCALAR");
  if (env == nullptr || *env == '\0') return false;
  return !(env[0] == '0' && env[1] == '\0');
}

const BitsetKernels* DetectKernels() {
  if (ForcedScalarByEnv()) return &kScalar;
#if NFACOUNT_HAVE_AVX2_KERNELS
  if (__builtin_cpu_supports("avx2")) return &kAvx2;
#endif
  return &kScalar;
}

std::atomic<const BitsetKernels*> g_active{nullptr};

}  // namespace

const BitsetKernels& ScalarKernels() { return kScalar; }

bool Avx2Available() {
#if NFACOUNT_HAVE_AVX2_KERNELS
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const BitsetKernels* Avx2Kernels() {
#if NFACOUNT_HAVE_AVX2_KERNELS
  return Avx2Available() ? &kAvx2 : nullptr;
#else
  return nullptr;
#endif
}

const BitsetKernels& ActiveKernels() {
  const BitsetKernels* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Concurrent first calls race benignly: both sides detect the same table.
    table = DetectKernels();
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

void SetForceScalar(bool force) {
  if (force) {
    g_active.store(&kScalar, std::memory_order_release);
    return;
  }
  g_active.store(DetectKernels(), std::memory_order_release);
}

}  // namespace simd
}  // namespace nfacount
