// Minimal POSIX TCP helpers for the serve-mode daemon (serve/server.cpp)
// and its client (serve/client.cpp): loopback listeners on ephemeral ports,
// blocking connect, and EINTR-safe full reads/writes. Everything returns the
// project's Status model — no exceptions, no errno leaking to callers. On
// Windows the surface compiles but every call reports Unimplemented (the
// serve subsystem is POSIX-only for now, matching the CI matrix).

#ifndef NFACOUNT_UTIL_NET_HPP_
#define NFACOUNT_UTIL_NET_HPP_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace nfacount {

/// Owning wrapper for one socket file descriptor. Movable, not copyable;
/// the destructor closes the descriptor. A default-constructed handle is
/// empty (fd() < 0).
///
/// The descriptor slot is atomic so a stop path may call ShutdownBoth()
/// while the owning thread is blocked in a read — the one cross-thread
/// access pattern the daemon relies on. Close() must still be serialized
/// with all other use of the handle (close + concurrent I/O risks the
/// kernel reusing the descriptor number): the daemon only closes after
/// joining the thread that reads from the socket.
class SocketFd {
 public:
  SocketFd() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit SocketFd(int fd) : fd_(fd) {}
  ~SocketFd() { Close(); }

  SocketFd(SocketFd&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  SocketFd& operator=(SocketFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;

  /// The raw descriptor, or -1 when empty.
  int fd() const { return fd_.load(std::memory_order_relaxed); }
  /// True when a descriptor is held.
  bool valid() const { return fd() >= 0; }
  /// Closes the descriptor now (idempotent).
  void Close();
  /// Shuts down both directions without closing, unblocking any thread
  /// parked in a read on this socket (used for daemon stop). No-op when
  /// empty.
  void ShutdownBoth();

 private:
  std::atomic<int> fd_{-1};
};

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port) with SO_REUSEADDR, listening with a backlog of 64. On
/// success stores the actually bound port into *bound_port.
Result<SocketFd> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Accepts one connection from `listener` (blocking). Unavailable when the
/// listener was shut down / closed underneath the call (the daemon's stop
/// path), InvalidArgument on other accept failures.
Result<SocketFd> AcceptConnection(const SocketFd& listener);

/// Opens a blocking TCP connection to 127.0.0.1:`port`.
Result<SocketFd> ConnectLoopback(uint16_t port);

/// Applies a receive timeout (SO_RCVTIMEO) to `sock`: a ReadFull blocked
/// longer than `millis` fails with DeadlineExceeded instead of wedging the
/// serving thread (the slow-loris defense). 0 disables the timeout.
Status SetReadTimeout(const SocketFd& sock, int millis);

/// Reads exactly `size` bytes into `out`, retrying on EINTR and short reads.
/// A clean peer close before the first byte is NotFound ("end of stream");
/// a close mid-buffer is DataLoss; a receive timeout is DeadlineExceeded.
Status ReadFull(const SocketFd& sock, void* out, size_t size);

/// Writes exactly `size` bytes, retrying on EINTR and short writes.
/// A failed or broken-pipe write is Unavailable.
Status WriteFull(const SocketFd& sock, const void* data, size_t size);

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_NET_HPP_
