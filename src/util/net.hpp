// Minimal POSIX TCP helpers for the serve-mode daemon (serve/server.cpp)
// and its client (serve/client.cpp): loopback listeners on ephemeral ports,
// blocking connect, and EINTR-safe full reads/writes. Everything returns the
// project's Status model — no exceptions, no errno leaking to callers. On
// Windows the surface compiles but every call reports Unimplemented (the
// serve subsystem is POSIX-only for now, matching the CI matrix).

#ifndef NFACOUNT_UTIL_NET_HPP_
#define NFACOUNT_UTIL_NET_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace nfacount {

/// Owning wrapper for one socket file descriptor. Movable, not copyable;
/// the destructor closes the descriptor. A default-constructed handle is
/// empty (fd() < 0).
///
/// The descriptor slot is atomic so a stop path may call ShutdownBoth()
/// while the owning thread is blocked in a read — the one cross-thread
/// access pattern the daemon relies on. Close() must still be serialized
/// with all other use of the handle (close + concurrent I/O risks the
/// kernel reusing the descriptor number): the daemon only closes after
/// joining the thread that reads from the socket.
class SocketFd {
 public:
  SocketFd() = default;
  /// Takes ownership of `fd` (-1 = empty).
  explicit SocketFd(int fd) : fd_(fd) {}
  ~SocketFd() { Close(); }

  SocketFd(SocketFd&& other) noexcept : fd_(other.fd_.exchange(-1)) {}
  SocketFd& operator=(SocketFd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_.store(other.fd_.exchange(-1));
    }
    return *this;
  }
  SocketFd(const SocketFd&) = delete;
  SocketFd& operator=(const SocketFd&) = delete;

  /// The raw descriptor, or -1 when empty.
  int fd() const { return fd_.load(std::memory_order_relaxed); }
  /// True when a descriptor is held.
  bool valid() const { return fd() >= 0; }
  /// Closes the descriptor now (idempotent).
  void Close();
  /// Shuts down both directions without closing, unblocking any thread
  /// parked in a read on this socket (used for daemon stop). No-op when
  /// empty.
  void ShutdownBoth();
  /// Half-close: shuts down the write direction only, signalling EOF to the
  /// peer while this side keeps reading replies (a pipelining client that
  /// has sent its last request). No-op when empty.
  void ShutdownWrite();

 private:
  std::atomic<int> fd_{-1};
};

/// Creates a TCP listener bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port) with SO_REUSEADDR, listening with a backlog of 64. On
/// success stores the actually bound port into *bound_port.
Result<SocketFd> ListenLoopback(uint16_t port, uint16_t* bound_port);

/// Accepts one connection from `listener` (blocking). Unavailable when the
/// listener was shut down / closed underneath the call (the daemon's stop
/// path), InvalidArgument on other accept failures.
Result<SocketFd> AcceptConnection(const SocketFd& listener);

/// Opens a blocking TCP connection to 127.0.0.1:`port`.
Result<SocketFd> ConnectLoopback(uint16_t port);

/// Applies a receive timeout (SO_RCVTIMEO) to `sock`: a ReadFull blocked
/// longer than `millis` fails with DeadlineExceeded instead of wedging the
/// serving thread (the slow-loris defense). 0 disables the timeout.
Status SetReadTimeout(const SocketFd& sock, int millis);

/// Reads exactly `size` bytes into `out`, retrying on EINTR and short reads.
/// A clean peer close before the first byte is NotFound ("end of stream");
/// a close mid-buffer is DataLoss; a receive timeout is DeadlineExceeded.
Status ReadFull(const SocketFd& sock, void* out, size_t size);

/// Writes exactly `size` bytes, retrying on EINTR and short writes.
/// A failed or broken-pipe write is Unavailable.
Status WriteFull(const SocketFd& sock, const void* data, size_t size);

// ---------------------------------------------------------------------------
// Nonblocking primitives for the event-driven serve runtime (serve/server.cpp
// reactor thread). All of these are POSIX-only like the rest of this header.
// ---------------------------------------------------------------------------

/// Switches `sock` between blocking and nonblocking mode (fcntl O_NONBLOCK).
Status SetNonBlocking(const SocketFd& sock, bool nonblocking);

/// Nonblocking accept. On success stores the new connection in *out; when no
/// connection is pending (EAGAIN) returns Ok with *out left empty — callers
/// must check out->valid(). Unavailable when the listener was closed or shut
/// down underneath the call.
Status TryAccept(const SocketFd& listener, SocketFd* out);

/// Reads up to `size` bytes into `out` without blocking; *n receives the byte
/// count (0 when the socket had nothing ready — EAGAIN is Ok, not an error).
/// A clean peer close is NotFound ("end of stream"); other errors DataLoss.
Status ReadSome(const SocketFd& sock, void* out, size_t size, size_t* n);

/// Writes up to `size` bytes without blocking; *n receives the byte count
/// (0 when the send buffer is full — EAGAIN is Ok). A broken pipe or other
/// send failure is Unavailable. Uses MSG_NOSIGNAL like WriteFull.
Status WriteSome(const SocketFd& sock, const void* data, size_t size,
                 size_t* n);

/// Readiness multiplexer: epoll(7) on Linux, poll(2) elsewhere, always
/// level-triggered. Each registered descriptor carries a caller-chosen
/// 64-bit tag that comes back in the Event — the reactor uses it to map
/// readiness to a connection without a descriptor lookup table.
///
/// Not thread-safe: the reactor thread owns the Poller exclusively; other
/// threads request attention through a WakePipe registered with it.
class Poller {
 public:
  enum : uint32_t {
    kReadable = 1u << 0,
    kWritable = 1u << 1,
    /// Reported (never requested): the peer hung up or the descriptor is in
    /// an error state. Always treated as readable so the owner observes the
    /// EOF/error from the next read.
    kError = 1u << 2,
  };

  struct Event {
    uint64_t tag = 0;
    uint32_t events = 0;
  };

  Poller();
  ~Poller();
  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// False when the backing epoll descriptor could not be created (Linux
  /// only; the poll(2) fallback cannot fail to construct).
  bool valid() const;

  /// Registers `fd` for `events` (kReadable/kWritable mask) under `tag`.
  Status Add(int fd, uint32_t events, uint64_t tag);
  /// Changes the interest mask (and tag) of a registered descriptor.
  Status Modify(int fd, uint32_t events, uint64_t tag);
  /// Deregisters `fd`. Must be called before the descriptor is closed.
  Status Remove(int fd);

  /// Blocks up to `timeout_ms` (-1 = forever, 0 = poll) for readiness and
  /// appends up to `max_events` results to *out (cleared first). Returns the
  /// number of events; 0 means the timeout elapsed. EINTR retries.
  Result<size_t> Wait(std::vector<Event>* out, size_t max_events,
                      int timeout_ms);

 private:
#if defined(__linux__) && !defined(NFACOUNT_FORCE_POLL)
  int epoll_fd_ = -1;
  std::vector<char> scratch_;  // epoll_event buffer, sized lazily in Wait
#else
  struct Entry {
    int fd;
    uint32_t events;
    uint64_t tag;
  };
  std::vector<Entry> entries_;
  std::vector<char> scratch_;  // pollfd buffer rebuilt per Wait
#endif
};

/// Cross-thread wakeup channel for a Poller: eventfd(2) on Linux, a
/// self-pipe elsewhere. Any thread may Signal(); the reactor registers fd()
/// for kReadable and calls Drain() when it fires. Signal coalescing is fine —
/// one drain observes any number of signals.
class WakePipe {
 public:
  WakePipe();
  ~WakePipe();
  WakePipe(const WakePipe&) = delete;
  WakePipe& operator=(const WakePipe&) = delete;

  bool valid() const;
  /// The descriptor to register with a Poller for kReadable.
  int fd() const;
  /// Wakes the poller. Safe from any thread; never blocks (a full pipe
  /// already guarantees a pending wakeup).
  void Signal();
  /// Consumes all pending signals. Reactor-thread only.
  void Drain();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;  // == read_fd_ for eventfd
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_NET_HPP_
