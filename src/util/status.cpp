#include "util/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace nfacount {

namespace internal {

void CheckFailed(const char* cond, const char* msg, const char* file,
                 int line) {
  std::fprintf(stderr, "NFA_CHECK failed: %s (%s) at %s:%d\n", msg, cond,
               file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:                 return "OK";
    case StatusCode::kInvalidArgument:    return "InvalidArgument";
    case StatusCode::kOutOfRange:         return "OutOfRange";
    case StatusCode::kFailedPrecondition: return "FailedPrecondition";
    case StatusCode::kResourceExhausted:  return "ResourceExhausted";
    case StatusCode::kNotFound:           return "NotFound";
    case StatusCode::kUnimplemented:      return "Unimplemented";
    case StatusCode::kInternal:           return "Internal";
    case StatusCode::kDataLoss:           return "DataLoss";
    case StatusCode::kUnavailable:        return "Unavailable";
    case StatusCode::kDeadlineExceeded:   return "DeadlineExceeded";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string message) {
  assert(code != StatusCode::kOk && "error Status requires a non-OK code");
  rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
}

const std::string& Status::message() const {
  static const std::string kEmpty;
  return ok() ? kEmpty : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace nfacount
