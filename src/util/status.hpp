// Status / Result error model (Arrow-style): library entry points return
// Status or Result<T> instead of throwing; internal hot paths use assertions.

#ifndef NFACOUNT_UTIL_STATUS_HPP_
#define NFACOUNT_UTIL_STATUS_HPP_

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace nfacount {

/// Machine-readable category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kNotFound,
  kUnimplemented,
  kInternal,
  /// Stored data is unreadable: truncated, corrupted, or failing its
  /// integrity checksum (checkpoint files, serialized state).
  kDataLoss,
  /// A transient endpoint failure: connection refused/reset, listener shut
  /// down, peer gone. Retrying against a live endpoint may succeed.
  kUnavailable,
  /// An operation ran out of its time budget (socket read timeouts).
  kDeadlineExceeded,
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Outcome of an operation: OK, or a code plus a diagnostic message.
///
/// An OK status carries no allocation; error states allocate a small record.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs an error status; `code` must not be kOk.
  Status(StatusCode code, std::string message);

  static Status Ok() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : rep_->code; }
  const std::string& message() const;

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  std::shared_ptr<const Rep> rep_;  // null == OK
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value.
  Result(T value) : v_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status; `status.ok()` must be false.
  Result(Status status) : v_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(v_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(v_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(v_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(v_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(v_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(v_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if errored.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(v_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> v_;
};

/// Always-on invariant check: prints the failed condition and aborts, in
/// release builds too. For API-boundary violations in accessors that cannot
/// return Status (out-of-range indices would otherwise be silent UB).
#define NFA_CHECK(cond, msg)                                          \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::nfacount::internal::CheckFailed(#cond, (msg), __FILE__,       \
                                        __LINE__);                    \
    }                                                                 \
  } while (false)

namespace internal {
/// Prints "NFA_CHECK failed: <msg> (<cond>) at <file>:<line>" and aborts.
[[noreturn]] void CheckFailed(const char* cond, const char* msg,
                              const char* file, int line);
}  // namespace internal

/// Propagates a non-OK Status from the evaluated expression.
#define NFA_RETURN_NOT_OK(expr)            \
  do {                                     \
    ::nfacount::Status _st = (expr);       \
    if (!_st.ok()) return _st;             \
  } while (false)

/// Evaluates a Result expression; on error returns its Status, otherwise
/// assigns the value to `lhs` (which must be declared by the caller).
#define NFA_ASSIGN_OR_RETURN(lhs, rexpr)   \
  do {                                     \
    auto _res = (rexpr);                   \
    if (!_res.ok()) return _res.status();  \
    lhs = std::move(_res).value();         \
  } while (false)

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_STATUS_HPP_
