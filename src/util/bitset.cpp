#include "util/bitset.hpp"

#include <algorithm>

namespace nfacount {

Bitset Bitset::FromIndices(size_t size, const std::vector<int>& indices) {
  Bitset b(size);
  for (int i : indices) b.Set(static_cast<size_t>(i));
  return b;
}

Bitset Bitset::FromWords(size_t size, const uint64_t* words) {
  Bitset b(size);
  std::copy(words, words + b.words_.size(), b.words_.begin());
  return b;
}

void Bitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

bool Bitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

size_t Bitset::Count() const {
  return simd::ActiveKernels().popcount(words_.data(), words_.size());
}

bool Bitset::Intersects(const Bitset& other) const {
  assert(size_ == other.size_);
  return simd::ActiveKernels().intersects(words_.data(), other.words_.data(),
                                          words_.size());
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(size_ == other.size_);
  simd::ActiveKernels().or_into(words_.data(), other.words_.data(),
                                words_.size());
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(size_ == other.size_);
  simd::ActiveKernels().and_into(words_.data(), other.words_.data(),
                                 words_.size());
  return *this;
}

Bitset& Bitset::AndNot(const Bitset& other) {
  assert(size_ == other.size_);
  simd::ActiveKernels().andnot_into(words_.data(), other.words_.data(),
                                    words_.size());
  return *this;
}

Bitset& Bitset::OrMasked(const Bitset& other, const Bitset& mask) {
  assert(size_ == other.size_ && size_ == mask.size_);
  simd::ActiveKernels().or_masked_into(words_.data(), other.words_.data(),
                                       mask.words_.data(), words_.size());
  return *this;
}

void Bitset::CopyFrom(const Bitset& other) {
  assert(size_ == other.size_);
  std::copy(other.words_.begin(), other.words_.end(), words_.begin());
}

void Bitset::AssignWords(const uint64_t* words, size_t nwords) {
  assert(nwords == words_.size());
  std::copy(words, words + nwords, words_.begin());
}

int Bitset::FirstSet() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int>(w * 64 + __builtin_ctzll(words_[w]));
    }
  }
  return -1;
}

std::vector<int> Bitset::ToIndices() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEachSet([&](int i) { out.push_back(i); });
  return out;
}

std::string Bitset::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachSet([&](int i) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

uint64_t Bitset::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (size_ * 0xbf58476d1ce4e5b9ULL);
  for (uint64_t w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xd6e8feb86659fd93ULL;
    h ^= h >> 32;
  }
  return h;
}

}  // namespace nfacount
