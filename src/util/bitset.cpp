#include "util/bitset.hpp"

#include <algorithm>

namespace nfacount {

Bitset Bitset::FromIndices(size_t size, const std::vector<int>& indices) {
  Bitset b(size);
  for (int i : indices) b.Set(static_cast<size_t>(i));
  return b;
}

void Bitset::SetAll() {
  std::fill(words_.begin(), words_.end(), ~0ULL);
  size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

bool Bitset::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

size_t Bitset::Count() const {
  size_t total = 0;
  for (uint64_t w : words_) total += static_cast<size_t>(__builtin_popcountll(w));
  return total;
}

bool Bitset::Intersects(const Bitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::OrMasked(const Bitset& other, const Bitset& mask) {
  assert(size_ == other.size_ && size_ == mask.size_);
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i] & mask.words_[i];
  }
  return *this;
}

void Bitset::CopyFrom(const Bitset& other) {
  assert(size_ == other.size_);
  std::copy(other.words_.begin(), other.words_.end(), words_.begin());
}

int Bitset::FirstSet() const {
  for (size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] != 0) {
      return static_cast<int>(w * 64 + __builtin_ctzll(words_[w]));
    }
  }
  return -1;
}

std::vector<int> Bitset::ToIndices() const {
  std::vector<int> out;
  out.reserve(Count());
  ForEachSet([&](int i) { out.push_back(i); });
  return out;
}

std::string Bitset::ToString() const {
  std::string out = "{";
  bool first = true;
  ForEachSet([&](int i) {
    if (!first) out += ",";
    out += std::to_string(i);
    first = false;
  });
  out += "}";
  return out;
}

uint64_t Bitset::Hash() const {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ (size_ * 0xbf58476d1ce4e5b9ULL);
  for (uint64_t w : words_) {
    h ^= w + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h *= 0xd6e8feb86659fd93ULL;
    h ^= h >> 32;
  }
  return h;
}

}  // namespace nfacount
