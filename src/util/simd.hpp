// Runtime-dispatched word-array kernels behind Bitset and the sampling
// plane. Every kernel is a pure function over little-endian uint64 word
// arrays; the AVX2 implementations compute bit-identical results to the
// scalar ones (bitwise ops are exact, popcount is an integer), so which
// table is active can never change an estimate — only its cost. The active
// table is chosen once, at first use: AVX2 when the CPU supports it, scalar
// when it does not or when NFACOUNT_FORCE_SCALAR is set in the environment
// (any value other than "0"/""). SetForceScalar() re-points the dispatch at
// runtime for tests and the nfa_cli --no-simd flag.

#ifndef NFACOUNT_UTIL_SIMD_HPP_
#define NFACOUNT_UTIL_SIMD_HPP_

#include <cstddef>
#include <cstdint>

namespace nfacount {
namespace simd {

/// One implementation family of the word-array kernels. All pointers are
/// non-null for nwords > 0; dst/src/mask ranges must not partially overlap.
struct BitsetKernels {
  const char* name;  ///< "scalar" or "avx2" — reported in bench output

  /// dst[i] |= src[i]
  void (*or_into)(uint64_t* dst, const uint64_t* src, size_t nwords);
  /// dst[i] &= src[i]
  void (*and_into)(uint64_t* dst, const uint64_t* src, size_t nwords);
  /// dst[i] &= ~src[i]
  void (*andnot_into)(uint64_t* dst, const uint64_t* src, size_t nwords);
  /// dst[i] |= src[i] & mask[i] — the fused frontier-propagation step.
  void (*or_masked_into)(uint64_t* dst, const uint64_t* src,
                         const uint64_t* mask, size_t nwords);
  /// true iff a[i] & b[i] != 0 for some i.
  bool (*intersects)(const uint64_t* a, const uint64_t* b, size_t nwords);
  /// Σ popcount(w[i]).
  size_t (*popcount)(const uint64_t* w, size_t nwords);
};

/// The portable reference implementation (always available).
const BitsetKernels& ScalarKernels();

/// True when this binary carries AVX2 kernels AND the CPU reports AVX2.
bool Avx2Available();

/// The AVX2 table, or nullptr when Avx2Available() is false. Exposed so the
/// equivalence tests and the kernel microbench can compare both tables
/// directly, independent of the active dispatch.
const BitsetKernels* Avx2Kernels();

/// The table all dispatched callers (Bitset operators, the sampling plane's
/// default) currently use. First call decides: scalar when forced via the
/// NFACOUNT_FORCE_SCALAR environment variable or when AVX2 is unavailable,
/// AVX2 otherwise. Safe to call concurrently.
const BitsetKernels& ActiveKernels();

/// Re-points ActiveKernels() at the scalar (true) or auto-detected (false)
/// table. Process-wide; intended for tests and nfa_cli --no-simd.
void SetForceScalar(bool force);

}  // namespace simd
}  // namespace nfacount

#endif  // NFACOUNT_UTIL_SIMD_HPP_
