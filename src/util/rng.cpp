#include "util/rng.hpp"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace nfacount {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t Mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t HashCombine(uint64_t h, uint64_t v) {
  return Mix64(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

Rng Rng::ForSubstream(uint64_t seed, uint64_t a, uint64_t b) {
  uint64_t key = Mix64(seed + 0x9e3779b97f4a7c15ULL);
  key = HashCombine(key, a);
  key = HashCombine(key, b);
  return Rng(key);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformU64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t lo = static_cast<uint64_t>(m);
  if (lo < bound) {
    uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(UniformU64(span));
}

double Rng::UniformDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

int Rng::DiscreteIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (!(total > 0.0)) return -1;
  double u = UniformDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return static_cast<int>(i);
  }
  // Floating-point slack: fall back to the last positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return static_cast<int>(i);
  }
  return -1;
}

Rng Rng::Split() { return Rng(NextU64() ^ 0x9e3779b97f4a7c15ULL); }

void DiscreteTable::Rebuild(const std::vector<double>& weights) {
  weights_ = weights;
  prefix_.resize(weights.size());
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    assert(weights[i] >= 0.0);
    acc += weights[i];
    prefix_[i] = acc;
  }
  total_ = acc;
}

int DiscreteTable::Draw(Rng& rng) const {
  if (!(total_ > 0.0)) return -1;
  const double u = rng.UniformDouble() * total_;
  // First i with u < prefix_[i] — the same condition DiscreteIndex's linear
  // scan tests, on the same partial sums.
  auto it = std::upper_bound(prefix_.begin(), prefix_.end(), u);
  if (it != prefix_.end()) return static_cast<int>(it - prefix_.begin());
  // Floating-point slack: DiscreteIndex's exact fallback — the last positive
  // weight (scanned on the retained weights, since a tiny weight can be
  // absorbed by the running sum and leave no strict prefix increase).
  for (size_t i = weights_.size(); i-- > 0;) {
    if (weights_[i] > 0.0) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace nfacount
