// Little-endian byte codec shared by every binary surface of the project:
// session checkpoints (fpras/checkpoint.cpp) and the serve-mode wire
// protocol (serve/protocol.cpp). One codec, one byte order, one failure
// model — a truncated or corrupt buffer surfaces as Status::DataLoss from
// the bounds-checked reader before any semantic check runs.

#ifndef NFACOUNT_UTIL_WIRE_HPP_
#define NFACOUNT_UTIL_WIRE_HPP_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.hpp"

namespace nfacount {

/// Appends fixed-width little-endian primitives to a byte string. The
/// encoding is canonical little-endian regardless of host order, so buffers
/// are portable across machines (and across the checkpoint/wire formats that
/// embed them).
class ByteWriter {
 public:
  /// Appends one byte.
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  /// Appends a 16-bit value, least-significant byte first.
  void U16(uint16_t v) {
    buf_.push_back(static_cast<char>(v & 0xff));
    buf_.push_back(static_cast<char>((v >> 8) & 0xff));
  }
  /// Appends a 32-bit value, least-significant byte first.
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  /// Appends a 64-bit value, least-significant byte first.
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }
  /// Appends a signed 32-bit value (two's-complement bits of U32).
  void I32(int32_t v) { U32(static_cast<uint32_t>(v)); }
  /// Appends a signed 64-bit value (two's-complement bits of U64).
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// Appends a double as its IEEE-754 bit pattern (8 bytes, little-endian).
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  /// Appends `size` raw bytes verbatim.
  void Bytes(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  /// Appends a length-prefixed string: u64 byte count, then the bytes.
  void String(const std::string& s) {
    U64(s.size());
    buf_.append(s);
  }

  /// The accumulated buffer (callers typically std::move it out).
  std::string& buffer() { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked little-endian reader over a byte span; every overrun is a
/// DataLoss status (a truncated buffer fails here, before any semantic
/// check). The span is borrowed — it must outlive the reader.
class ByteReader {
 public:
  /// Wraps the span [data, data + size); reads advance an internal cursor.
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}

  /// Reads one byte into *out.
  Status U8(uint8_t* out) {
    NFA_RETURN_NOT_OK(Need(1));
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::Ok();
  }
  /// Reads a little-endian 16-bit value into *out.
  Status U16(uint16_t* out) {
    NFA_RETURN_NOT_OK(Need(2));
    const uint16_t lo = static_cast<unsigned char>(data_[pos_]);
    const uint16_t hi = static_cast<unsigned char>(data_[pos_ + 1]);
    pos_ += 2;
    *out = static_cast<uint16_t>(lo | (hi << 8));
    return Status::Ok();
  }
  /// Reads a little-endian 32-bit value into *out.
  Status U32(uint32_t* out) {
    NFA_RETURN_NOT_OK(Need(4));
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::Ok();
  }
  /// Reads a little-endian 64-bit value into *out.
  Status U64(uint64_t* out) {
    NFA_RETURN_NOT_OK(Need(8));
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::Ok();
  }
  /// Reads a signed 32-bit value (two's-complement bits of U32).
  Status I32(int32_t* out) {
    uint32_t v = 0;
    NFA_RETURN_NOT_OK(U32(&v));
    *out = static_cast<int32_t>(v);
    return Status::Ok();
  }
  /// Reads a signed 64-bit value (two's-complement bits of U64).
  Status I64(int64_t* out) {
    uint64_t v = 0;
    NFA_RETURN_NOT_OK(U64(&v));
    *out = static_cast<int64_t>(v);
    return Status::Ok();
  }
  /// Reads an IEEE-754 double from its 8-byte little-endian bit pattern.
  Status F64(double* out) {
    uint64_t bits = 0;
    NFA_RETURN_NOT_OK(U64(&bits));
    std::memcpy(out, &bits, sizeof(*out));
    return Status::Ok();
  }
  /// Copies `size` raw bytes into out.
  Status Bytes(void* out, size_t size) {
    NFA_RETURN_NOT_OK(Need(size));
    std::memcpy(out, data_ + pos_, size);
    pos_ += size;
    return Status::Ok();
  }
  /// Reads a length-prefixed string (u64 byte count, then the bytes),
  /// rejecting declared lengths above `max_size` as DataLoss — a corrupt
  /// length field must fail before sizing any allocation by it.
  Status String(std::string* out, size_t max_size) {
    uint64_t size = 0;
    NFA_RETURN_NOT_OK(U64(&size));
    if (size > max_size) {
      return Status::DataLoss("wire: embedded string length corrupt");
    }
    NFA_RETURN_NOT_OK(Need(static_cast<size_t>(size)));
    out->assign(data_ + pos_, static_cast<size_t>(size));
    pos_ += static_cast<size_t>(size);
    return Status::Ok();
  }

  /// Bytes left between the cursor and the end of the span.
  size_t remaining() const { return size_ - pos_; }

 private:
  Status Need(size_t bytes) {
    if (size_ - pos_ < bytes) {
      return Status::DataLoss("wire: field overruns buffer");
    }
    return Status::Ok();
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_WIRE_HPP_
