#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>

namespace nfacount {

int ThreadPool::ResolveThreadCount(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  threads_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int w = 0; w < num_threads_ - 1; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Symmetric laggard wait on teardown: no worker may still be draining a
    // stale batch when its fields go out of scope with the pool.
    std::unique_lock<std::mutex> lock(mu_);
    batch_done_.wait(lock, [&] { return active_ == 0; });
    stop_ = true;
  }
  batch_ready_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      batch_ready_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      // Register as draining *before* releasing the lock: ParallelFor only
      // returns once active_ is back to 0, so batch state can never be
      // reset while this worker still reads it.
      ++active_;
    }
    DrainBatch(worker);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    batch_done_.notify_all();
  }
}

void ThreadPool::DrainBatch(int worker) {
  for (;;) {
    const int64_t item = next_.fetch_add(1);
    if (item >= count_) return;
    if (!failed_.load()) {
      try {
        Status st = (*fn_)(item, worker);
        if (!st.ok()) RecordError(std::move(st));
      } catch (const std::exception& e) {
        RecordError(Status::Internal(std::string("ParallelFor item threw: ") +
                                     e.what()));
      } catch (...) {
        RecordError(Status::Internal("ParallelFor item threw a non-exception"));
      }
    }
    // Completion accounting after the item fully ran (or was cancelled):
    // the final increment wakes the batch owner.
    if (completed_.fetch_add(1) + 1 == count_) {
      std::lock_guard<std::mutex> lock(mu_);
      batch_done_.notify_all();
    }
  }
}

void ThreadPool::RecordError(Status status) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!failed_.load()) {
    first_error_ = std::move(status);
    failed_.store(true);  // items not yet started are skipped
  }
}

Status ThreadPool::ParallelFor(int64_t count, const ItemFn& fn) {
  if (count <= 0) return Status::Ok();
  {
    std::unique_lock<std::mutex> lock(mu_);
    // A worker that slept through the *previous* batch entirely may only now
    // be waking to register for it and drain its exhausted cursor; it still
    // reads fn_/count_/next_ outside the lock while doing so. Wait for every
    // such laggard to leave before resetting batch state under it.
    batch_done_.wait(lock, [&] { return active_ == 0; });
    fn_ = &fn;
    count_ = count;
    next_.store(0);
    completed_.store(0);
    failed_.store(false);
    first_error_ = Status::Ok();
    ++generation_;
  }
  batch_ready_.notify_all();

  // The caller is the last worker slot; with num_threads == 1 this is the
  // whole execution (inline, no synchronization beyond the atomics).
  DrainBatch(num_threads_ - 1);

  // Wait for every item to finish AND every pool worker to leave the batch
  // (a worker may hold a claimed-but-out-of-range cursor value briefly after
  // the last item completes; resetting state under it would corrupt the
  // next batch).
  std::unique_lock<std::mutex> lock(mu_);
  batch_done_.wait(
      lock, [&] { return completed_.load() == count_ && active_ == 0; });
  fn_ = nullptr;
  return first_error_;
}

}  // namespace nfacount
