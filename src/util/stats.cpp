#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace nfacount {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  assert(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  double pos = q * static_cast<double>(values.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, values.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double RelativeError(double estimate, double truth) {
  if (truth == 0.0) {
    return estimate == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
  }
  return std::abs(estimate - truth) / std::abs(truth);
}

double EmpiricalTvToUniform(const std::map<std::string, int64_t>& histogram,
                            int64_t total, int64_t support_size) {
  assert(total > 0 && support_size > 0);
  double uniform = 1.0 / static_cast<double>(support_size);
  double tv = 0.0;
  int64_t seen_outcomes = 0;
  for (const auto& [key, count] : histogram) {
    (void)key;
    double p = static_cast<double>(count) / static_cast<double>(total);
    tv += std::abs(p - uniform);
    ++seen_outcomes;
  }
  // Outcomes never observed each contribute |0 - 1/support|.
  int64_t missing = support_size - seen_outcomes;
  if (missing > 0) tv += static_cast<double>(missing) * uniform;
  return tv / 2.0;
}

double EmpiricalTv(const std::map<std::string, int64_t>& a,
                   const std::map<std::string, int64_t>& b) {
  int64_t total_a = 0, total_b = 0;
  for (const auto& [k, v] : a) {
    (void)k;
    total_a += v;
  }
  for (const auto& [k, v] : b) {
    (void)k;
    total_b += v;
  }
  assert(total_a > 0 && total_b > 0);
  double tv = 0.0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() || ib != b.end()) {
    double pa = 0.0, pb = 0.0;
    if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
      pa = static_cast<double>(ia->second) / static_cast<double>(total_a);
      ++ia;
    } else if (ia == a.end() || ib->first < ia->first) {
      pb = static_cast<double>(ib->second) / static_cast<double>(total_b);
      ++ib;
    } else {
      pa = static_cast<double>(ia->second) / static_cast<double>(total_a);
      pb = static_cast<double>(ib->second) / static_cast<double>(total_b);
      ++ia;
      ++ib;
    }
    tv += std::abs(pa - pb);
  }
  return tv / 2.0;
}

double ChiSquareUniform(const std::map<std::string, int64_t>& histogram,
                        int64_t total, int64_t support_size) {
  assert(total > 0 && support_size > 0);
  double expected = static_cast<double>(total) / static_cast<double>(support_size);
  double stat = 0.0;
  int64_t seen = 0;
  for (const auto& [key, count] : histogram) {
    (void)key;
    double d = static_cast<double>(count) - expected;
    stat += d * d / expected;
    ++seen;
  }
  int64_t missing = support_size - seen;
  if (missing > 0) stat += static_cast<double>(missing) * expected;
  return stat;
}

int64_t HoeffdingSamples(double eps, double delta) {
  assert(eps > 0.0 && delta > 0.0 && delta < 1.0);
  return static_cast<int64_t>(std::ceil(std::log(2.0 / delta) / (2.0 * eps * eps)));
}

double LogLogSlope(const std::vector<double>& xs, const std::vector<double>& ys) {
  assert(xs.size() == ys.size() && xs.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i] > 0.0 && ys[i] > 0.0);
    double lx = std::log(xs[i]);
    double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  double denom = n * sxx - sx * sx;
  assert(denom != 0.0);
  return (n * sxy - sx * sy) / denom;
}

}  // namespace nfacount
