// Dynamic fixed-capacity bitset used for NFA state sets: reachability
// frontiers, predecessor expansions, and the amortized membership oracle of
// the FPRAS (one bit probe per membership query, see DESIGN.md §4).

#ifndef NFACOUNT_UTIL_BITSET_HPP_
#define NFACOUNT_UTIL_BITSET_HPP_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/simd.hpp"

namespace nfacount {

/// Fixed-size (chosen at construction) bitset over indices [0, size).
/// All binary operations require equal sizes.
class Bitset {
 public:
  Bitset() : size_(0) {}
  explicit Bitset(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

  /// Builds a bitset of `size` bits with the given indices set.
  static Bitset FromIndices(size_t size, const std::vector<int>& indices);

  /// Builds a bitset of `size` bits from a raw word array of (size+63)/64
  /// words (little-endian bit order, tail bits beyond `size` must be clear).
  static Bitset FromWords(size_t size, const uint64_t* words);

  size_t size() const { return size_; }

  bool Test(size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) {
    assert(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void Reset(size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  void Clear() { std::fill(words_.begin(), words_.end(), 0); }

  /// Sets all bits in [0, size).
  void SetAll();

  bool Any() const;
  bool None() const { return !Any(); }
  size_t Count() const;

  /// True if this and `other` share at least one set bit.
  bool Intersects(const Bitset& other) const;

  /// True if every set bit of this is also set in `other`.
  bool IsSubsetOf(const Bitset& other) const;

  Bitset& operator|=(const Bitset& other);
  Bitset& operator&=(const Bitset& other);

  /// this &= ~other (set difference), one kernel pass.
  Bitset& AndNot(const Bitset& other);

  /// Fused frontier-propagation step: this |= (other & mask), one pass over
  /// the word arrays. This is the inner loop of CSR mask-based predecessor/
  /// successor expansion (unrolled.hpp): OR a transition-row mask into the
  /// frontier while clipping to the previous level's reachable set, without
  /// materializing the intermediate.
  Bitset& OrMasked(const Bitset& other, const Bitset& mask);

  /// Copies `other` into this. Unlike operator= it requires equal sizes and
  /// never reallocates — safe for scratch buffers on the hot path.
  void CopyFrom(const Bitset& other);

  /// Overwrites the contents from a raw word array of exactly words().size()
  /// words (tail bits must be clear). Never reallocates — the bridge from
  /// FrontierPlane rows back into Bitset-taking APIs (memo keys, AppUnion).
  void AssignWords(const uint64_t* words, size_t nwords);

  bool operator==(const Bitset& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  /// Index of the lowest set bit, or -1 if none.
  int FirstSet() const;

  /// Calls fn(index) for every set bit in ascending order.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t bits = words_[w];
      while (bits) {
        int b = __builtin_ctzll(bits);
        fn(static_cast<int>(w * 64 + b));
        bits &= bits - 1;
      }
    }
  }

  /// Set-bit indices in ascending order.
  std::vector<int> ToIndices() const;

  /// e.g. "{0,3,7}" — for diagnostics and test failure messages.
  std::string ToString() const;

  /// 64-bit mixing hash of the contents (size-sensitive).
  uint64_t Hash() const;

  /// Raw words, little-endian bit order (for memo-cache keys).
  const std::vector<uint64_t>& words() const { return words_; }

  /// Mutable raw word pointer for span-kernel interop (plane sweeps). The
  /// caller must keep tail bits beyond size() clear.
  uint64_t* mutable_words() { return words_.data(); }

 private:
  size_t size_;
  std::vector<uint64_t> words_;
};

/// Hash functor for unordered containers keyed by Bitset.
struct BitsetHash {
  size_t operator()(const Bitset& b) const { return static_cast<size_t>(b.Hash()); }
};

}  // namespace nfacount

#endif  // NFACOUNT_UTIL_BITSET_HPP_
