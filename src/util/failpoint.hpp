// Named failpoints — the project's one fault-injection mechanism. A
// failpoint is an instrumented site on an I/O or recovery path that a test
// (or an operator, via the environment) can arm with an action:
//
//   error             the site fails outright without side effects
//   short-write(N)    the site performs only the first N bytes of its write
//                     and then fails exactly like a crash / full disk
//
// Sites are identified by dotted names. The ones wired today:
//
//   checkpoint.write   SaveSessionCheckpoint's temp-file write
//                      (fpras/checkpoint.cpp)
//   manifest.append    registry-manifest journal appends (serve/manifest.cpp)
//   net.write          serve-mode frame writes (serve/protocol.cpp)
//   registry.revive    checkpoint revival inside SessionRegistry::PinResident
//                      (serve/registry.cpp; error action only)
//
// Arming, per test:
//
//   ASSERT_TRUE(failpoint::Set("checkpoint.write", "short-write(16):1").ok());
//   ... run the scenario ...
//   failpoint::ClearAll();
//
// or for a whole process via the environment (parsed once, lazily):
//
//   NFACOUNT_FAILPOINTS=checkpoint.write=short-write(16):1,net.write=error
//
// The spec grammar is `action[(arg)][:count]` — `count` is how many times
// the point fires before disarming itself (absent = every time). Multiple
// assignments are comma- or semicolon-separated; programmatic Set overrides
// an env entry of the same name.
//
// Concurrency: Check() is safe from any thread while another thread arms or
// clears (the serve daemon's connection threads race test threads; the
// registry map is mutex-guarded and the not-armed fast path is one relaxed
// atomic load, so unarmed hot paths stay allocation- and lock-free).

#ifndef NFACOUNT_UTIL_FAILPOINT_HPP_
#define NFACOUNT_UTIL_FAILPOINT_HPP_

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace nfacount {
namespace failpoint {

/// What an armed failpoint does to its site when it fires.
enum class Action {
  kOff = 0,     ///< not armed (or exhausted): the site proceeds normally
  kError,       ///< fail outright, no side effects
  kShortWrite,  ///< perform only the first `arg` bytes, then fail
};

/// One evaluation of a failpoint at its site.
struct Eval {
  Action action = Action::kOff;  ///< kOff = proceed normally
  int64_t arg = 0;               ///< short-write byte budget

  /// True when the site should inject its fault.
  bool fires() const { return action != Action::kOff; }
};

/// Arms failpoint `name` from a spec string (`error`, `error:2`,
/// `short-write(16)`, `short-write(16):1`, or `off`). Replaces any existing
/// arming of the same name. InvalidArgument on a malformed spec.
Status Set(const std::string& name, const std::string& spec);

/// Disarms failpoint `name` (no-op when not armed).
void Clear(const std::string& name);

/// Disarms every failpoint, including env-armed ones (test teardown).
void ClearAll();

/// Evaluates failpoint `name` at its site: returns the armed action (and
/// consumes one firing of a counted arming) or kOff. The first call in a
/// process also folds in NFACOUNT_FAILPOINTS from the environment.
Eval Check(const char* name);

/// Times failpoint `name` has fired so far (0 when never armed).
int64_t Hits(const std::string& name);

/// True when NFACOUNT_FAILPOINTS is present in the environment — tests use
/// this to relax assertions that a chaos schedule legitimately perturbs
/// (draw-stream positions; never counts).
bool EnvScheduleActive();

}  // namespace failpoint
}  // namespace nfacount

#endif  // NFACOUNT_UTIL_FAILPOINT_HPP_
